package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/geo"
)

// InventoryReport summarises an inventory-aware day: the paper's
// footnote 2 lifecycle where a station emptied of E-bikes is removed from
// P and may later be re-established by fresh requests.
type InventoryReport struct {
	Requests        int     `json:"requests"`
	Served          int     `json:"served"`
	NoBikeAvailable int     `json:"noBikeAvailable"`
	StationsOpened  int     `json:"stationsOpened"`
	StationsRemoved int     `json:"stationsRemoved"`
	WalkTotal       float64 `json:"walkTotalM"`
	SpaceCost       float64 `json:"spaceCost"`
	Stranded        int     `json:"stranded"`
}

// TotalCost is the Eq. 1 objective of the day.
func (r InventoryReport) TotalCost() float64 { return r.WalkTotal + r.SpaceCost }

// RunDayWithInventory streams trips through an E-sharing placer while
// tracking per-station bike inventory. Each trip picks up from the
// nearest station that still holds a bike (removing the station from P
// when it empties, per the paper's footnote 2), gets a parking decision
// for its destination, and rides there. Trips that find no bike anywhere
// are counted and skipped.
func RunDayWithInventory(
	placer *core.ESharing,
	fleet *energy.Fleet,
	trips []dataset.Trip,
	openingCost float64,
) (*InventoryReport, error) {
	if placer == nil {
		return nil, fmt.Errorf("sim: nil placer")
	}
	if fleet == nil {
		return nil, fmt.Errorf("sim: nil fleet")
	}
	if openingCost <= 0 {
		return nil, fmt.Errorf("sim: opening cost %v must be positive", openingCost)
	}

	// inventory[i] holds the bike IDs parked at stations[i], aligned with
	// the placer's station indices.
	stations := placer.Stations()
	inventory := make([][]int64, len(stations))
	for _, b := range fleet.Bikes() {
		idx, _ := geo.Nearest(b.Loc, stations)
		if idx >= 0 {
			inventory[idx] = append(inventory[idx], b.ID)
		}
	}

	report := &InventoryReport{}
	for i, trip := range trips {
		report.Requests++

		// Pick up: nearest station (by trip start) holding a bike.
		from := nearestStocked(placer.Stations(), inventory, trip.Start)
		if from < 0 {
			report.NoBikeAvailable++
			continue
		}
		bikeID := inventory[from][0]
		inventory[from] = inventory[from][1:]
		if len(inventory[from]) == 0 {
			// Footnote 2: an emptied station leaves P.
			if err := placer.RemoveStation(from); err != nil {
				return nil, fmt.Errorf("sim: trip %d: remove station: %w", i, err)
			}
			inventory = append(inventory[:from], inventory[from+1:]...)
			report.StationsRemoved++
		}

		// Decide the destination parking.
		decision, err := placer.Place(trip.End)
		if err != nil {
			return nil, fmt.Errorf("sim: trip %d: %w", i, err)
		}
		if decision.Opened {
			report.StationsOpened++
			report.SpaceCost += openingCost
			inventory = append(inventory, nil)
		}
		// Ride there (stranding drops the bike at the raw destination,
		// off-station; the never-taken walk to the parking is not
		// charged to the objective).
		target := decision.Station
		if err := fleet.Ride(bikeID, target); err != nil {
			if errors.Is(err, energy.ErrBatteryEmpty) {
				report.Stranded++
				if terr := fleet.Teleport(bikeID, trip.End); terr != nil {
					return nil, fmt.Errorf("sim: trip %d: %w", i, terr)
				}
				report.Served++
				continue
			}
			return nil, fmt.Errorf("sim: trip %d: %w", i, err)
		}
		report.WalkTotal += decision.Walk
		inventory[decision.StationIndex] = append(inventory[decision.StationIndex], bikeID)
		report.Served++
	}
	return report, nil
}

// nearestStocked returns the index of the closest station with at least
// one bike, or -1.
func nearestStocked(stations []geo.Point, inventory [][]int64, from geo.Point) int {
	best, bestD := -1, 0.0
	for i, loc := range stations {
		if i >= len(inventory) || len(inventory[i]) == 0 {
			continue
		}
		d := from.Dist2(loc)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
