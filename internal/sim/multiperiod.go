package sim

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/geo"
)

// PeriodResult is one service period within a multi-period run.
type PeriodResult struct {
	Period int             `json:"period"`
	Report *ChargingReport `json:"report"`
	// FleetLowAfter is the fleet-wide low count once the period ends
	// (skipped stragglers carry over).
	FleetLowAfter int `json:"fleetLowAfter"`
}

// MultiPeriodResult aggregates a sequence of charging rounds.
type MultiPeriodResult struct {
	Periods []PeriodResult `json:"periods"`
	// TotalCost sums every period's Table VI cost.
	TotalCost float64 `json:"totalCost"`
	// PeriodsToClear is the first period (1-based) after which no low
	// bikes remain, or 0 if the horizon ended first.
	PeriodsToClear int `json:"periodsToClear"`
}

// RunMultiPeriod executes several consecutive charging rounds against the
// same fleet — the paper's remark that skipped straggler stations "have
// higher chance to be charged during the next service period". Usage
// between rounds is modelled by draining a fraction of the charged fleet
// back into the low tail via drainPerPeriod (0 disables).
func RunMultiPeriod(
	stations []geo.Point,
	fleet *energy.Fleet,
	cfg ChargingConfig,
	periods int,
	drainPerPeriod float64,
) (*MultiPeriodResult, error) {
	if periods < 1 {
		return nil, fmt.Errorf("sim: periods %d < 1", periods)
	}
	if drainPerPeriod < 0 || drainPerPeriod > 1 {
		return nil, fmt.Errorf("sim: drain fraction %v outside [0,1]", drainPerPeriod)
	}
	res := &MultiPeriodResult{}
	for p := 0; p < periods; p++ {
		periodCfg := cfg
		periodCfg.Seed = cfg.Seed + uint64(p)*7919
		// Deferral escalates: a station skipped as a straggler cannot be
		// skipped forever, so the threshold relaxes by one per period
		// until even single-bike sites are serviced.
		periodCfg.SkipThreshold = cfg.SkipThreshold - p
		if periodCfg.SkipThreshold < 0 {
			periodCfg.SkipThreshold = 0
		}
		report, err := RunChargingRound(stations, fleet, periodCfg)
		if err != nil {
			return nil, fmt.Errorf("period %d: %w", p+1, err)
		}
		res.TotalCost += report.TotalCost()
		lowAfter := len(fleet.LowBikes())
		res.Periods = append(res.Periods, PeriodResult{
			Period: p + 1, Report: report, FleetLowAfter: lowAfter,
		})
		if lowAfter == 0 && res.PeriodsToClear == 0 {
			res.PeriodsToClear = p + 1
		}
		if drainPerPeriod > 0 && p < periods-1 {
			if err := drainFleet(fleet, periodCfg.Seed^0x5e5e, drainPerPeriod); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// drainFleet rides a random fraction of healthy bikes far enough to drop
// them below the threshold — the between-period usage model.
func drainFleet(fleet *energy.Fleet, seed uint64, fraction float64) error {
	bikes := fleet.Bikes()
	model := fleet.Model()
	// Deterministic selection: every k-th healthy bike.
	step := int(1 / fraction)
	if step < 1 {
		step = 1
	}
	offset := int(seed % uint64(step))
	for i, b := range bikes {
		if b.Low(model) || (i+offset)%step != 0 {
			continue
		}
		// Ride in place-ish: a long loop that lands back near the same
		// spot, leaving the bike low but above empty.
		target := b.Level - model.LowThreshold*0.7
		if target < 0.02 {
			target = 0.02
		}
		legs := (b.Level - target) * model.RangeMeters / 4
		for leg := 0; leg < 4; leg++ {
			dest := b.Loc
			if leg%2 == 0 {
				dest = dest.Add(geo.Pt(legs, 0))
			}
			if err := fleet.Ride(b.ID, dest); err != nil {
				return fmt.Errorf("sim: drain bike %d: %w", b.ID, err)
			}
		}
	}
	return nil
}
