package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
)

// DayReport summarises one simulated service day of tier-1 operation.
type DayReport struct {
	Requests       int     `json:"requests"`
	StationsOpened int     `json:"stationsOpened"`
	StationsTotal  int     `json:"stationsTotal"`
	WalkTotal      float64 `json:"walkTotalM"`
	AvgWalk        float64 `json:"avgWalkM"`
	SpaceCost      float64 `json:"spaceCost"`
	// Stranded counts trips whose bike lacked the charge to reach the
	// assigned parking; the rider leaves it at the destination instead.
	Stranded    int `json:"stranded"`
	LowBikesEnd int `json:"lowBikesEnd"`
}

// TotalCost returns the Eq. 1 objective for the day.
func (r DayReport) TotalCost() float64 { return r.WalkTotal + r.SpaceCost }

// RunDay streams a day of trips through an online placer and the fleet:
// each trip's destination is assigned a parking location, and the trip's
// bike rides from its current position to that parking (draining its
// battery). openingCost is the space-occupation charge per station opened
// during the stream. Trips whose bike IDs are unknown to the fleet are
// rejected; a bike without the charge to reach the assigned parking is
// left at the raw destination and counted as stranded.
func RunDay(placer core.OnlinePlacer, fleet *energy.Fleet, trips []dataset.Trip, openingCost float64) (*DayReport, error) {
	if placer == nil {
		return nil, fmt.Errorf("sim: nil placer")
	}
	if fleet == nil {
		return nil, fmt.Errorf("sim: nil fleet")
	}
	if openingCost <= 0 {
		return nil, fmt.Errorf("sim: opening cost %v must be positive", openingCost)
	}
	report := &DayReport{}
	for i, trip := range trips {
		decision, err := placer.Place(trip.End)
		if err != nil {
			return nil, fmt.Errorf("sim: trip %d: %w", i, err)
		}
		report.Requests++
		if decision.Opened {
			report.StationsOpened++
			report.SpaceCost += openingCost
		}
		// Ride the bike to the assigned parking. The walk counts only
		// when the ride reaches the parking: a stranded rider abandons
		// the bike at the raw destination and walks nowhere.
		if err := fleet.Ride(trip.BikeID, decision.Station); err != nil {
			switch {
			case errors.Is(err, energy.ErrBatteryEmpty):
				report.Stranded++
				// The rider abandons the bike at the raw destination;
				// relocation without energy cost.
				if terr := fleet.Teleport(trip.BikeID, trip.End); terr != nil {
					return nil, fmt.Errorf("sim: trip %d: %w", i, terr)
				}
			case errors.Is(err, energy.ErrUnknownBike):
				return nil, fmt.Errorf("sim: trip %d: %w", i, err)
			default:
				return nil, fmt.Errorf("sim: trip %d: %w", i, err)
			}
		} else {
			report.WalkTotal += decision.Walk
		}
	}
	report.StationsTotal = len(placer.Stations())
	if report.Requests > 0 {
		report.AvgWalk = report.WalkTotal / float64(report.Requests)
	}
	report.LowBikesEnd = len(fleet.LowBikes())
	return report, nil
}
