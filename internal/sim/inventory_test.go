package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/geo"
)

func inventoryFixture(t *testing.T) (*core.ESharing, *energy.Fleet) {
	t.Helper()
	landmarks := []geo.Point{geo.Pt(0, 0), geo.Pt(1000, 0), geo.Pt(0, 1000)}
	cfg := core.DefaultESharingConfig()
	cfg.TestEvery = 0
	placer, err := core.NewESharing(landmarks, 5000, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Two bikes at each landmark.
	id := int64(1)
	for _, lm := range landmarks {
		for k := 0; k < 2; k++ {
			if err := fleet.Add(energy.Bike{ID: id, Loc: lm, Level: 1}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	return placer, fleet
}

func tripAt(order int64, start, end geo.Point) dataset.Trip {
	return dataset.Trip{
		OrderID:   order,
		BikeID:    order,
		StartTime: time.Date(2017, 5, 10, 8, 0, 0, 0, time.UTC).Add(time.Duration(order) * time.Minute),
		Start:     start,
		End:       end,
	}
}

func TestRunDayWithInventoryValidation(t *testing.T) {
	placer, fleet := inventoryFixture(t)
	if _, err := RunDayWithInventory(nil, fleet, nil, 100); err == nil {
		t.Error("nil placer should error")
	}
	if _, err := RunDayWithInventory(placer, nil, nil, 100); err == nil {
		t.Error("nil fleet should error")
	}
	if _, err := RunDayWithInventory(placer, fleet, nil, 0); err == nil {
		t.Error("zero opening cost should error")
	}
}

func TestInventoryStationRemovalAndReopen(t *testing.T) {
	placer, fleet := inventoryFixture(t)
	before := len(placer.Stations())
	// Drain the (0,0) landmark: two trips departing there toward another
	// landmark.
	trips := []dataset.Trip{
		tripAt(1, geo.Pt(5, 5), geo.Pt(1000, 0)),
		tripAt(2, geo.Pt(5, 5), geo.Pt(1000, 0)),
	}
	rep, err := RunDayWithInventory(placer, fleet, trips, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StationsRemoved != 1 {
		t.Fatalf("removed %d stations, want 1 (report %+v)", rep.StationsRemoved, rep)
	}
	if got := len(placer.Stations()); got != before-1 {
		t.Errorf("stations %d -> %d, want removal", before, got)
	}
	if rep.Served != 2 {
		t.Errorf("served=%d", rep.Served)
	}
}

func TestInventoryNoBikeAvailable(t *testing.T) {
	landmarks := []geo.Point{geo.Pt(0, 0)}
	cfg := core.DefaultESharingConfig()
	cfg.TestEvery = 0
	placer, err := core.NewESharing(landmarks, 5000, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Add(energy.Bike{ID: 1, Loc: geo.Pt(0, 0), Level: 1}); err != nil {
		t.Fatal(err)
	}
	trips := []dataset.Trip{
		tripAt(1, geo.Pt(0, 0), geo.Pt(200, 0)), // takes the only bike
		tripAt(2, geo.Pt(0, 0), geo.Pt(300, 0)), // no bike left at origin...
	}
	rep, err := RunDayWithInventory(placer, fleet, trips, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// The single bike moved to the trip-1 parking; trip 2 picks it up
	// from there (global nearest-stocked search), so nothing fails —
	// unless the bike's station is unreachable. Either way the counters
	// must balance.
	if rep.Served+rep.NoBikeAvailable != rep.Requests {
		t.Errorf("counters unbalanced: %+v", rep)
	}
}

func TestInventoryBookkeepingBalances(t *testing.T) {
	placer, fleet := inventoryFixture(t)
	trips, err := dataset.Generate(dataset.Config{
		Days: 1, TripsWeekday: 150, TripsWeekend: 150, Bikes: 6, Seed: 21,
		Box: geo.Square(geo.Pt(0, 0), 1200),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDayWithInventory(placer, fleet, trips, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(trips) {
		t.Errorf("requests=%d, want %d", rep.Requests, len(trips))
	}
	if rep.Served+rep.NoBikeAvailable != rep.Requests {
		t.Errorf("served %d + unserved %d != %d", rep.Served, rep.NoBikeAvailable, rep.Requests)
	}
	if rep.SpaceCost != float64(rep.StationsOpened)*5000 {
		t.Errorf("space cost %v for %d openings", rep.SpaceCost, rep.StationsOpened)
	}
	if rep.TotalCost() != rep.WalkTotal+rep.SpaceCost {
		t.Error("TotalCost mismatch")
	}
	// The fleet never loses bikes.
	if fleet.Len() != 6 {
		t.Errorf("fleet size changed: %d", fleet.Len())
	}
}

// TestInventoryStrandedWalkNotCharged: a trip whose bike dies before
// the parking strands at the raw destination — the rider never walks
// the decision's station leg, so WalkTotal must stay untouched (the
// objective used to charge the phantom walk anyway).
func TestInventoryStrandedWalkNotCharged(t *testing.T) {
	landmarks := []geo.Point{geo.Pt(0, 0), geo.Pt(3000, 0)}
	cfg := core.DefaultESharingConfig()
	cfg.TestEvery = 0
	placer, err := core.NewESharing(landmarks, 1e6, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// 1% charge rides ~350 m; the assigned parking is ~3 km out.
	if err := fleet.Add(energy.Bike{ID: 1, Loc: geo.Pt(0, 0), Level: 0.01}); err != nil {
		t.Fatal(err)
	}
	trips := []dataset.Trip{tripAt(1, geo.Pt(0, 0), geo.Pt(2990, 0))}
	rep, err := RunDayWithInventory(placer, fleet, trips, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stranded != 1 || rep.Served != 1 {
		t.Fatalf("stranded=%d served=%d, want 1/1 (report %+v)", rep.Stranded, rep.Served, rep)
	}
	if rep.WalkTotal != 0 {
		t.Errorf("stranded trip contributed %v m of walk, want 0", rep.WalkTotal)
	}
	b, err := fleet.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Loc != geo.Pt(2990, 0) {
		t.Errorf("stranded bike at %v, want the raw destination", b.Loc)
	}
}
