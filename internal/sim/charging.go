// Package sim orchestrates the E-Sharing simulations: the charging-round
// simulation behind Figs. 11–12 and Table VI (incentive phase, operator
// TSP tour under a work budget, cost accounting), and the full-city day
// simulation used by the examples.
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/incentive"
	"repro/internal/routing"
	"repro/internal/stats"
)

// ChargingConfig parameterises one charging round.
type ChargingConfig struct {
	// Alpha is the incentive level (0 disables the mechanism — the
	// Table VI baseline).
	Alpha float64
	// Params are the operator's unit costs.
	Params incentive.CostParams
	// SinkCount is the number of aggregation sites (default: ~1/3 of the
	// stations holding low bikes, at least 1).
	SinkCount int
	// Pickups is the number of user arrivals during the incentive phase
	// (default: 6x the low-bike count).
	Pickups int
	// WorkBudget is the operator's shift length (default 2 h).
	WorkBudget time.Duration
	// TravelSpeed is the service vehicle speed in m/s (default 6.0,
	// ~21 km/h urban).
	TravelSpeed float64
	// ServiceTimePerStop is the time spent charging at one station —
	// batteries are swapped "in a paralleled manner", so the cost is per
	// stop, not per bike (default 12 min).
	ServiceTimePerStop time.Duration
	// SkipThreshold implements the paper's remark: stations left with at
	// most this many low bikes are skipped this round and deferred to the
	// next service period.
	SkipThreshold int
	// User population: MaxExtraWalk ~ N(WalkMean, WalkStd²) clamped at 0,
	// MinReward ~ Exp(mean RewardMean).
	WalkMean, WalkStd float64
	RewardMean        float64
	// Seed drives users and pickup locations.
	Seed uint64
}

// DefaultChargingConfig returns the evaluation settings for a given alpha.
func DefaultChargingConfig(alpha float64) ChargingConfig {
	return ChargingConfig{
		Alpha:              alpha,
		Params:             incentive.DefaultCostParams(),
		WorkBudget:         2 * time.Hour,
		TravelSpeed:        6,
		ServiceTimePerStop: 12 * time.Minute,
		SkipThreshold:      2,
		WalkMean:           700,
		WalkStd:            250,
		RewardMean:         6,
		Seed:               1,
	}
}

func (c ChargingConfig) validate() error {
	switch {
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("sim: alpha %v outside [0,1]", c.Alpha)
	case c.WorkBudget <= 0:
		return fmt.Errorf("sim: work budget %v must be positive", c.WorkBudget)
	case c.TravelSpeed <= 0:
		return fmt.Errorf("sim: travel speed %v must be positive", c.TravelSpeed)
	case c.ServiceTimePerStop < 0:
		return fmt.Errorf("sim: service time %v < 0", c.ServiceTimePerStop)
	case c.SinkCount < 0:
		return fmt.Errorf("sim: sink count %d < 0", c.SinkCount)
	case c.Pickups < 0:
		return fmt.Errorf("sim: pickups %d < 0", c.Pickups)
	case c.SkipThreshold < 0:
		return fmt.Errorf("sim: skip threshold %d < 0", c.SkipThreshold)
	case c.WalkMean < 0 || c.WalkStd < 0 || c.RewardMean < 0:
		return fmt.Errorf("sim: negative user population parameters")
	}
	return c.Params.Validate()
}

// ChargingReport is the Table VI row for one round.
type ChargingReport struct {
	Alpha float64 `json:"alpha"`

	// LowBefore/LowAfter map station index to low-bike count before and
	// after the incentive phase (the Fig. 11 heatmaps).
	LowBefore map[int]int `json:"lowBefore"`
	LowAfter  map[int]int `json:"lowAfter"`

	StationsNeedingService int     `json:"stationsNeedingService"`
	StationsVisited        int     `json:"stationsVisited"`
	TourLength             float64 `json:"tourLengthM"`

	TotalLowBikes int     `json:"totalLowBikes"`
	ChargedBikes  int     `json:"chargedBikes"`
	ChargedPct    float64 `json:"chargedPct"`
	Relocated     int     `json:"relocated"`

	ServiceCost    float64 `json:"serviceCost"`
	DelayCost      float64 `json:"delayCost"`
	EnergyCost     float64 `json:"energyCost"`
	IncentivesPaid float64 `json:"incentivesPaid"`
}

// TotalCost sums the Table VI components.
func (r ChargingReport) TotalCost() float64 {
	return r.ServiceCost + r.DelayCost + r.EnergyCost + r.IncentivesPaid
}

// RunChargingRound simulates one service period: an incentive phase (when
// alpha > 0) that relocates low-energy bikes toward aggregation sinks,
// followed by the operator's TSP tour over the stations still needing
// service, truncated by the work budget. The fleet is mutated: relocated
// bikes move, bikes at visited stations are charged.
func RunChargingRound(stations []geo.Point, fleet *energy.Fleet, cfg ChargingConfig) (*ChargingReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(stations) == 0 {
		return nil, fmt.Errorf("sim: no stations")
	}
	if fleet == nil {
		return nil, fmt.Errorf("sim: nil fleet")
	}
	rng := stats.NewRNGStream(cfg.Seed, stats.StreamCharging)

	low := fleet.GroupByStation(stations, math.Inf(1), true)
	report := &ChargingReport{
		Alpha:     cfg.Alpha,
		LowBefore: countByStation(low),
	}
	for _, ids := range low {
		report.TotalLowBikes += len(ids)
	}
	if report.TotalLowBikes == 0 {
		report.LowAfter = map[int]int{}
		report.ChargedPct = 100
		return report, nil
	}

	// Phase 1: incentives.
	if cfg.Alpha > 0 {
		if err := runIncentivePhase(stations, fleet, low, cfg, rng, report); err != nil {
			return nil, err
		}
		low = fleet.GroupByStation(stations, math.Inf(1), true)
	}
	report.LowAfter = countByStation(low)

	// Phase 2: operator tour over stations needing service, largest
	// loads first is implicit in the TSP ordering; the budget cuts the
	// tail.
	// The straggler skip rule is part of the incentive mechanism's
	// deferral policy ("the operator can skip those locations with only a
	// few ones left"); the no-incentive baseline must refill every site
	// holding a low bike.
	skip := cfg.SkipThreshold
	if cfg.Alpha == 0 {
		skip = 0
	}
	service := make([]int, 0, len(low))
	for i, ids := range low {
		if len(ids) > skip {
			service = append(service, i)
		}
	}
	sort.Ints(service)
	report.StationsNeedingService = len(service)
	if len(service) == 0 {
		report.ChargedPct = 100
		return report, nil
	}

	// Moving distance (Table VI): the full TSP route through every demand
	// site — the operator eventually traverses all of them across
	// periods.
	allPts := make([]geo.Point, len(service))
	for k, i := range service {
		allPts[k] = stations[i]
	}
	if _, fullLen, err := routing.Solve(allPts); err == nil {
		report.TourLength = fullLen
	} else {
		return nil, fmt.Errorf("sim: full tour: %w", err)
	}

	// Operator policy: the shift cannot always cover every site, so the
	// most loaded stations are scheduled first ("schedule the operators
	// ... to the low-energy demand sites") — the largest load-ranked
	// prefix whose TSP tour fits the work budget is served. This is what
	// makes aggregation pay: incentivised sinks concentrate bikes and are
	// served preferentially.
	byLoad := append([]int(nil), service...)
	sort.Slice(byLoad, func(a, b int) bool {
		la, lb := len(low[byLoad[a]]), len(low[byLoad[b]])
		if la != lb {
			return la > lb
		}
		return byLoad[a] < byLoad[b]
	})
	var chosen []int
	var order []int
	for m := len(byLoad); m >= 1; m-- {
		prefix := byLoad[:m]
		pts := make([]geo.Point, m)
		for k, i := range prefix {
			pts[k] = stations[i]
		}
		ord, length, err := routing.Solve(pts)
		if err != nil {
			return nil, fmt.Errorf("sim: tour: %w", err)
		}
		travel := time.Duration(length / cfg.TravelSpeed * float64(time.Second))
		need := travel + time.Duration(m)*cfg.ServiceTimePerStop
		if need <= cfg.WorkBudget {
			chosen, order = prefix, ord
			break
		}
	}
	for _, k := range order {
		stationIdx := chosen[k]
		report.StationsVisited++
		for _, id := range low[stationIdx] {
			if err := fleet.Charge(id); err != nil {
				return nil, fmt.Errorf("sim: charge bike %d: %w", id, err)
			}
			report.ChargedBikes++
		}
	}
	report.ChargedPct = 100 * float64(report.ChargedBikes) / float64(report.TotalLowBikes)

	// Cost accounting per Eq. 10 over every station needing service: the
	// operator must eventually visit all of them, so Table VI charges the
	// full n even when this shift only covers a prefix. Energy is paid per
	// battery actually refilled.
	n := float64(report.StationsNeedingService)
	report.ServiceCost = n * cfg.Params.ServicePerStop
	report.DelayCost = (n*n - n) / 2 * cfg.Params.DelayUnit
	report.EnergyCost = float64(report.ChargedBikes) * cfg.Params.ChargePerBike
	return report, nil
}

func runIncentivePhase(
	stations []geo.Point,
	fleet *energy.Fleet,
	low map[int][]int64,
	cfg ChargingConfig,
	rng *rand.Rand,
	report *ChargingReport,
) error {
	sinkCount := cfg.SinkCount
	if sinkCount == 0 {
		sinkCount = (len(low) + 3) / 4
		if sinkCount < 1 {
			sinkCount = 1
		}
	}
	sinks := incentive.PickSinks(low, sinkCount)
	if len(sinks) == 0 {
		return nil
	}
	mechCfg := incentive.DefaultMechanismConfig(cfg.Alpha)
	mechCfg.Params = cfg.Params
	mech, err := incentive.NewMechanism(mechCfg, stations, fleet, low, sinks)
	if err != nil {
		return fmt.Errorf("sim: mechanism: %w", err)
	}

	// Pickup stream: users appear at stations holding low bikes (weighted
	// by load) heading to random other stations — the app offers the
	// relocation deal on pickup.
	sources := make([]int, 0, len(low))
	for i, ids := range low {
		if len(ids) > 0 {
			sources = append(sources, i)
		}
	}
	sort.Ints(sources)
	// weights are built from the sorted sources, so they can never fall
	// out of alignment with them.
	weights := make([]float64, len(sources))
	for k, i := range sources {
		weights[k] = float64(len(low[i]))
	}
	pickups := cfg.Pickups
	if pickups == 0 {
		pickups = 4 * report.TotalLowBikes
	}
	for n := 0; n < pickups; n++ {
		si := stats.WeightedIndex(rng, weights)
		if si < 0 {
			break
		}
		from := sources[si]
		dest := stations[rng.IntN(len(stations))]
		user := incentive.User{
			MaxExtraWalk: math.Max(0, stats.Normal(rng, cfg.WalkMean, cfg.WalkStd)),
			MinReward:    stats.Exponential(rng, 1/math.Max(cfg.RewardMean, 1e-9)),
		}
		if _, _, err := mech.HandlePickup(incentive.Pickup{From: from, Dest: dest, Profile: user}); err != nil {
			return fmt.Errorf("sim: pickup %d: %w", n, err)
		}
		// Keep the source weights in sync as stations drain.
		weights[si] = float64(mech.LowRemaining(from))
	}
	res := mech.Result()
	report.Relocated = res.Relocated
	report.IncentivesPaid = res.IncentivesPaid
	return nil
}

func countByStation(low map[int][]int64) map[int]int {
	out := make(map[int]int, len(low))
	for i, ids := range low {
		if len(ids) > 0 {
			out[i] = len(ids)
		}
	}
	return out
}
