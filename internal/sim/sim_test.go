package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/incentive"
	"repro/internal/stats"
)

// chargingFixture builds a grid of stations with a scattered low-battery
// tail.
func chargingFixture(t *testing.T, seed uint64) ([]geo.Point, *energy.Fleet) {
	t.Helper()
	var stations []geo.Point
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			stations = append(stations, geo.Pt(float64(c)*500, float64(r)*500))
		}
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	for i := 1; i <= 300; i++ {
		st := stations[rng.IntN(len(stations))]
		loc := geo.Pt(st.X+rng.Float64()*40-20, st.Y+rng.Float64()*40-20)
		if err := fleet.Add(energy.Bike{ID: int64(i), Loc: loc, Level: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.SeedLevels(rng, 0.2); err != nil {
		t.Fatal(err)
	}
	return stations, fleet
}

func TestChargingConfigValidation(t *testing.T) {
	stations := []geo.Point{geo.Pt(0, 0)}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	mutations := []func(*ChargingConfig){
		func(c *ChargingConfig) { c.Alpha = -0.1 },
		func(c *ChargingConfig) { c.Alpha = 1.1 },
		func(c *ChargingConfig) { c.WorkBudget = 0 },
		func(c *ChargingConfig) { c.TravelSpeed = 0 },
		func(c *ChargingConfig) { c.ServiceTimePerStop = -time.Second },
		func(c *ChargingConfig) { c.SinkCount = -1 },
		func(c *ChargingConfig) { c.Pickups = -1 },
		func(c *ChargingConfig) { c.WalkMean = -1 },
		func(c *ChargingConfig) { c.Params = incentive.CostParams{ServicePerStop: -1} },
	}
	for i, mutate := range mutations {
		cfg := DefaultChargingConfig(0.4)
		mutate(&cfg)
		if _, err := RunChargingRound(stations, fleet, cfg); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
	if _, err := RunChargingRound(nil, fleet, DefaultChargingConfig(0)); err == nil {
		t.Error("no stations should fail")
	}
	if _, err := RunChargingRound(stations, nil, DefaultChargingConfig(0)); err == nil {
		t.Error("nil fleet should fail")
	}
}

func TestChargingRoundNoLowBikes(t *testing.T) {
	stations := []geo.Point{geo.Pt(0, 0)}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Add(energy.Bike{ID: 1, Level: 0.9}); err != nil {
		t.Fatal(err)
	}
	rep, err := RunChargingRound(stations, fleet, DefaultChargingConfig(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLowBikes != 0 || rep.ChargedPct != 100 || rep.TotalCost() != 0 {
		t.Errorf("clean fleet report: %+v", rep)
	}
}

func TestChargingRoundBaseline(t *testing.T) {
	stations, fleet := chargingFixture(t, 1)
	rep, err := RunChargingRound(stations, fleet, DefaultChargingConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLowBikes < 40 {
		t.Fatalf("fixture has %d low bikes, want ~60", rep.TotalLowBikes)
	}
	if rep.Relocated != 0 || rep.IncentivesPaid != 0 {
		t.Errorf("alpha=0 must not pay incentives: %+v", rep)
	}
	if rep.StationsVisited == 0 || rep.ChargedBikes == 0 {
		t.Errorf("operator did nothing: %+v", rep)
	}
	if rep.ChargedBikes > rep.TotalLowBikes {
		t.Errorf("charged more than existed: %+v", rep)
	}
	wantService := float64(rep.StationsNeedingService) * 5
	if math.Abs(rep.ServiceCost-wantService) > 1e-9 {
		t.Errorf("service cost %v, want %v", rep.ServiceCost, wantService)
	}
	n := float64(rep.StationsNeedingService)
	if math.Abs(rep.DelayCost-(n*n-n)/2*5) > 1e-9 {
		t.Errorf("delay cost %v", rep.DelayCost)
	}
	if math.Abs(rep.EnergyCost-float64(rep.ChargedBikes)*2) > 1e-9 {
		t.Errorf("energy cost %v", rep.EnergyCost)
	}
}

func TestChargingRoundIncentivesAggregateAndSave(t *testing.T) {
	// The Table VI headline: incentives reduce the stations needing
	// service, raise the charged percentage, and cut total cost.
	stationsA, fleetA := chargingFixture(t, 2)
	base, err := RunChargingRound(stationsA, fleetA, DefaultChargingConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	stationsB, fleetB := chargingFixture(t, 2) // identical initial state
	incented, err := RunChargingRound(stationsB, fleetB, DefaultChargingConfig(0.7))
	if err != nil {
		t.Fatal(err)
	}
	if incented.Relocated == 0 {
		t.Fatal("no bikes relocated at alpha=0.7")
	}
	if incented.StationsNeedingService >= base.StationsNeedingService {
		t.Errorf("service stations %d (incented) >= %d (base)",
			incented.StationsNeedingService, base.StationsNeedingService)
	}
	if incented.ChargedPct <= base.ChargedPct {
		t.Errorf("charged %.1f%% (incented) <= %.1f%% (base)",
			incented.ChargedPct, base.ChargedPct)
	}
	if incented.TotalCost() >= base.TotalCost() {
		t.Errorf("total cost %.0f (incented) >= %.0f (base)",
			incented.TotalCost(), base.TotalCost())
	}
}

func TestChargingRoundChargesFleet(t *testing.T) {
	stations, fleet := chargingFixture(t, 3)
	lowBefore := len(fleet.LowBikes())
	rep, err := RunChargingRound(stations, fleet, DefaultChargingConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	lowAfter := len(fleet.LowBikes())
	if lowAfter != lowBefore-rep.ChargedBikes {
		t.Errorf("fleet low count %d -> %d but report charged %d",
			lowBefore, lowAfter, rep.ChargedBikes)
	}
}

func TestChargingRoundBudgetTruncates(t *testing.T) {
	stations, fleet := chargingFixture(t, 4)
	cfg := DefaultChargingConfig(0)
	cfg.WorkBudget = 15 * time.Minute // one stop's service time + slack
	rep, err := RunChargingRound(stations, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StationsVisited > 1 {
		t.Errorf("tiny budget visited %d stations", rep.StationsVisited)
	}
	if rep.ChargedPct > 50 {
		t.Errorf("tiny budget charged %.1f%%", rep.ChargedPct)
	}
}

func TestChargingRoundDeterministic(t *testing.T) {
	run := func() *ChargingReport {
		stations, fleet := chargingFixture(t, 5)
		rep, err := RunChargingRound(stations, fleet, DefaultChargingConfig(0.4))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.TotalCost() != b.TotalCost() || a.ChargedBikes != b.ChargedBikes || a.Relocated != b.Relocated {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunDay(t *testing.T) {
	trips, err := dataset.Generate(dataset.Config{
		Days: 1, TripsWeekday: 200, TripsWeekend: 200, Bikes: 40, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := fleet.Add(energy.Bike{ID: int64(i), Loc: geo.Pt(1500, 1500), Level: 1}); err != nil {
			t.Fatal(err)
		}
	}
	placer, err := core.NewMeyerson(10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDay(placer, fleet, trips, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(trips) {
		t.Errorf("requests %d, want %d", rep.Requests, len(trips))
	}
	if rep.StationsOpened == 0 || rep.StationsTotal == 0 {
		t.Error("no stations opened")
	}
	if rep.SpaceCost != float64(rep.StationsOpened)*10000 {
		t.Errorf("space cost %v for %d openings", rep.SpaceCost, rep.StationsOpened)
	}
	if rep.AvgWalk < 0 || rep.TotalCost() != rep.WalkTotal+rep.SpaceCost {
		t.Errorf("cost bookkeeping wrong: %+v", rep)
	}
}

func TestRunDayValidation(t *testing.T) {
	placer, err := core.NewMeyerson(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDay(nil, fleet, nil, 100); err == nil {
		t.Error("nil placer should error")
	}
	if _, err := RunDay(placer, nil, nil, 100); err == nil {
		t.Error("nil fleet should error")
	}
	if _, err := RunDay(placer, fleet, nil, 0); err == nil {
		t.Error("zero opening cost should error")
	}
	// Unknown bike id.
	trips := []dataset.Trip{{OrderID: 1, BikeID: 99, End: geo.Pt(1, 1)}}
	if _, err := RunDay(placer, fleet, trips, 100); err == nil {
		t.Error("unknown bike should error")
	}
}

func TestRunDayStranded(t *testing.T) {
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// A bike with 1% charge (350 m) and a 3 km trip.
	if err := fleet.Add(energy.Bike{ID: 1, Loc: geo.Pt(0, 0), Level: 0.01}); err != nil {
		t.Fatal(err)
	}
	placer, err := core.NewMeyerson(1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a station far away so assignment requires a long ride.
	if _, err := placer.Place(geo.Pt(3000, 0)); err != nil {
		t.Fatal(err)
	}
	trips := []dataset.Trip{{OrderID: 1, BikeID: 1, End: geo.Pt(2990, 0)}}
	rep, err := RunDay(placer, fleet, trips, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stranded != 1 {
		t.Errorf("stranded=%d, want 1", rep.Stranded)
	}
	b, err := fleet.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Loc != geo.Pt(2990, 0) {
		t.Errorf("stranded bike should rest at the raw destination, got %v", b.Loc)
	}
	// A stranded rider abandons the bike at the raw destination and
	// never walks the decision's station leg, so the trip must not
	// contribute to WalkTotal.
	if rep.WalkTotal != 0 {
		t.Errorf("stranded trip contributed %v m of walk, want 0", rep.WalkTotal)
	}
}
