package privacy

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func TestNewObfuscatorValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewObfuscator(eps, 1); err == nil {
			t.Errorf("epsilon %v should error", eps)
		}
	}
}

func TestLambertWm1(t *testing.T) {
	// W₋₁ satisfies W·e^W = x on [-1/e, 0).
	for _, x := range []float64{-0.3678, -0.3, -0.2, -0.1, -0.01, -0.001} {
		w := lambertWm1(x)
		if math.IsNaN(w) {
			t.Fatalf("W(%v) is NaN", x)
		}
		if got := w * math.Exp(w); math.Abs(got-x) > 1e-9*(1+math.Abs(x)) {
			t.Errorf("W(%v)=%v: w·e^w=%v", x, w, got)
		}
		if w > -1 {
			t.Errorf("W₋₁(%v)=%v must be <= -1", x, w)
		}
	}
	if !math.IsNaN(lambertWm1(0.5)) || !math.IsNaN(lambertWm1(-1)) {
		t.Error("out-of-domain inputs should be NaN")
	}
}

func TestObfuscateDisplacementMoments(t *testing.T) {
	// Mean displacement of planar Laplace is 2/epsilon.
	eps := math.Log(4) / 200 // distinguishability factor 4 at 200 m
	o, err := NewObfuscator(eps, 3)
	if err != nil {
		t.Fatal(err)
	}
	origin := geo.Pt(1000, 1000)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += origin.Dist(o.Obfuscate(origin))
	}
	mean := sum / n
	want := o.ExpectedDisplacement()
	if math.Abs(mean-want) > 0.03*want {
		t.Errorf("mean displacement %v, want ~%v", mean, want)
	}
}

func TestObfuscateIsotropy(t *testing.T) {
	o, err := NewObfuscator(0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	origin := geo.Pt(0, 0)
	quad := [4]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		p := o.Obfuscate(origin)
		q := 0
		if p.X >= 0 {
			q |= 1
		}
		if p.Y >= 0 {
			q |= 2
		}
		quad[q]++
	}
	for q, c := range quad {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("quadrant %d frequency %v, want ~0.25", q, frac)
		}
	}
}

func TestObfuscateDeterministicBySeed(t *testing.T) {
	mk := func() geo.Point {
		o, err := NewObfuscator(0.02, 9)
		if err != nil {
			t.Fatal(err)
		}
		return o.Obfuscate(geo.Pt(5, 5))
	}
	if mk() != mk() {
		t.Error("same seed should reproduce noise")
	}
}

func TestPseudonymizer(t *testing.T) {
	if _, err := NewPseudonymizer(nil); err == nil {
		t.Error("empty key should error")
	}
	p, err := NewPseudonymizer([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	a := p.UserToken(42)
	if len(a) != 16 {
		t.Errorf("token length %d, want 16", len(a))
	}
	if a != p.UserToken(42) {
		t.Error("tokens must be stable")
	}
	if a == p.UserToken(43) {
		t.Error("distinct users must get distinct tokens")
	}
	q, err := NewPseudonymizer([]byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if a == q.UserToken(42) {
		t.Error("tokens must depend on the key")
	}
}
