// Package privacy implements the location-privacy hooks the paper's
// system model calls for ("additional security features can be introduced
// such as hashing/anonymizing the user information or obfuscation with
// location-wise differential privacy"): planar-Laplace geo-
// indistinguishability noise for destinations (Andrés et al., CCS 2013)
// and keyed one-way pseudonymisation for user identifiers.
package privacy

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/geo"
	"repro/internal/stats"
)

// Obfuscator adds planar-Laplace noise achieving epsilon-geo-
// indistinguishability: two locations at distance d are statistically
// indistinguishable up to a factor exp(epsilon·d).
type Obfuscator struct {
	epsilon float64 // per-metre privacy budget
	rng     *rand.Rand
}

// NewObfuscator validates epsilon (in 1/metres; e.g. ln(4)/200 makes
// points 200 m apart distinguishable by at most a factor 4).
func NewObfuscator(epsilon float64, seed uint64) (*Obfuscator, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("privacy: epsilon %v must be positive and finite", epsilon)
	}
	return &Obfuscator{
		epsilon: epsilon,
		rng:     stats.NewRNGStream(seed, stats.StreamPrivacy),
	}, nil
}

// Epsilon returns the privacy budget per metre.
func (o *Obfuscator) Epsilon() float64 { return o.epsilon }

// Obfuscate returns p displaced by planar-Laplace noise: the angle is
// uniform and the radius follows the Gamma(2, 1/epsilon) distribution,
// sampled via the inverse CDF using the principal branch of the Lambert
// W function.
func (o *Obfuscator) Obfuscate(p geo.Point) geo.Point {
	theta := o.rng.Float64() * 2 * math.Pi
	r := o.sampleRadius()
	return geo.Pt(p.X+r*math.Cos(theta), p.Y+r*math.Sin(theta))
}

// sampleRadius inverts the planar-Laplace radial CDF
// F(r) = 1 − (1 + εr)·exp(−εr) at a uniform quantile.
func (o *Obfuscator) sampleRadius() float64 {
	u := o.rng.Float64()
	// r = −(W₋₁((u−1)/e) + 1)/ε, with W₋₁ the lower Lambert branch.
	w := lambertWm1((u - 1) / math.E)
	return -(w + 1) / o.epsilon
}

// ExpectedDisplacement returns the mean noise radius, 2/epsilon.
func (o *Obfuscator) ExpectedDisplacement() float64 { return 2 / o.epsilon }

// lambertWm1 evaluates the W₋₁ branch of the Lambert W function on
// [-1/e, 0) by Halley iteration.
func lambertWm1(x float64) float64 {
	if x >= 0 || x < -1/math.E {
		return math.NaN()
	}
	// Initial guess: series around the branch point for x near -1/e,
	// log-based elsewhere.
	var w float64
	if x > -0.25 {
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	} else {
		p := -math.Sqrt(2 * (1 + math.E*x))
		w = -1 + p - p*p/3
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if math.Abs(f) < 1e-14*(1+math.Abs(x)) {
			break
		}
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		step := f / denom
		w -= step
		if math.Abs(step) < 1e-15*(1+math.Abs(w)) {
			break
		}
	}
	return w
}

// Pseudonymizer replaces user identifiers with keyed HMAC-SHA256
// pseudonyms: stable within a deployment (so repeat behaviour can still
// be modelled) but not invertible without the key.
type Pseudonymizer struct {
	key []byte
}

// NewPseudonymizer requires a non-empty secret key.
func NewPseudonymizer(key []byte) (*Pseudonymizer, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("privacy: empty pseudonymisation key")
	}
	return &Pseudonymizer{key: append([]byte(nil), key...)}, nil
}

// UserToken returns a stable 16-hex-character pseudonym for userID.
func (p *Pseudonymizer) UserToken(userID int64) string {
	mac := hmac.New(sha256.New, p.key)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(userID))
	mac.Write(buf[:])
	return hex.EncodeToString(mac.Sum(nil)[:8])
}
