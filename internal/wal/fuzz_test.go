package wal

import (
	"reflect"
	"testing"

	"repro/internal/geo"
)

// FuzzWALDecode throws arbitrary byte strings at the log scanner: it
// must never panic, never allocate unboundedly, and classify every
// input as clean, torn, or corrupt. Whatever records it does accept
// must round-trip through the encoder byte-identically — the decoder
// cannot invent state the writer never produced.
func FuzzWALDecode(f *testing.F) {
	// Seed with real images: empty, clean, torn, and corrupted logs.
	var clean []byte
	clean = appendFrame(logMagic[:len(logMagic):len(logMagic)],
		appendGenesisPayload(nil, Genesis{Base: 3, ConfigDigest: 0xabc, Name: "e-sharing"}))
	clean = appendFrame(clean, appendDecisionPayload(nil, DecisionRecord{
		Dest: geo.Pt(1, 2), Station: geo.Pt(3, 4), StationIndex: 1, Opened: true, Walk: 2.5,
	}))
	clean = appendFrame(clean, appendPickupPayload(nil, PickupRecord{StationIndex: 1}))
	f.Add([]byte{})
	f.Add([]byte(logMagic))
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	mut := append([]byte(nil), clean...)
	mut[len(logMagic)+frameHeaderLen+2] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ScanLog("fuzz", data)
		if err != nil {
			if res != nil {
				t.Fatal("error with non-nil result")
			}
			return
		}
		if res.TornOffset > int64(len(data)) {
			t.Fatalf("torn offset %d beyond %d-byte input", res.TornOffset, len(data))
		}
		if len(res.Records) > 0 && res.Genesis == nil {
			t.Fatal("records decoded without a genesis")
		}
		// Re-encode everything the scan accepted; the clean prefix of
		// the input must be exactly the re-encoding.
		var out []byte
		out = append(out, logMagic...)
		if res.Genesis != nil {
			out = appendFrame(out, appendGenesisPayload(nil, *res.Genesis))
		}
		for _, rec := range res.Records {
			switch r := rec.(type) {
			case DecisionRecord:
				out = appendFrame(out, appendDecisionPayload(nil, r))
			case PickupRecord:
				out = appendFrame(out, appendPickupPayload(nil, r))
			default:
				t.Fatalf("scan produced unknown record type %T", rec)
			}
		}
		end := int64(len(data))
		if res.TornOffset >= 0 {
			end = res.TornOffset
		}
		if res.Genesis == nil {
			// Nothing decoded: the whole input must be a torn prefix
			// of a new file (checked above via TornOffset).
			return
		}
		if int64(len(out)) != end || !reflect.DeepEqual(out, data[:end]) {
			t.Fatalf("accepted prefix does not round-trip: %d bytes re-encoded, %d accepted", len(out), end)
		}
	})
}
