package wal

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/geo"
)

func testOpts() Options {
	return Options{ConfigDigest: 0xdeadbeefcafe, Name: "e-sharing", SyncEvery: 1}
}

// testDecision derives a distinct, fully deterministic record from i.
func testDecision(i int) DecisionRecord {
	return DecisionRecord{
		Dest:         geo.Pt(float64(i)*3.25, float64(i)*-7.5),
		Station:      geo.Pt(float64(i%5)*100, float64(i%3)*100),
		StationIndex: i % 5,
		Opened:       i%4 == 0,
		Walk:         float64(i) * 1.125,
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, testOpts())
	if rec.Snapshot != nil || len(rec.Tail) != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	want := make([]any, 0, 12)
	for i := 0; i < 10; i++ {
		d := testDecision(i)
		if err := l.AppendDecision(d); err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	if err := l.AppendPickup(PickupRecord{StationIndex: 2}); err != nil {
		t.Fatal(err)
	}
	want = append(want, PickupRecord{StationIndex: 2})
	if got := l.Records(); got != 11 {
		t.Fatalf("Records() = %d, want 11", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := mustOpen(t, dir, testOpts())
	defer l2.Close()
	if rec2.TornBytes != 0 {
		t.Fatalf("clean shutdown reported %d torn bytes", rec2.TornBytes)
	}
	if !reflect.DeepEqual(rec2.Tail, want) {
		t.Fatalf("recovered tail %+v, want %+v", rec2.Tail, want)
	}
	if got := l2.Records(); got != 11 {
		t.Fatalf("reopened Records() = %d, want 11", got)
	}
	// The log must keep accepting appends after recovery.
	if err := l2.AppendDecision(testDecision(99)); err != nil {
		t.Fatal(err)
	}
}

// TestKillAtEveryByte is the recovery invariant: for a log truncated at
// every possible byte offset (a crash can stop a write anywhere),
// recovery either yields a strict prefix of the logged records — bit
// identical — or refuses; never wrong state, never a panic.
func TestKillAtEveryByte(t *testing.T) {
	src := t.TempDir()
	l, _ := mustOpen(t, src, testOpts())
	const K = 20
	want := make([]any, 0, K)
	for i := 0; i < K; i++ {
		d := testDecision(i)
		if err := l.AppendDecision(d); err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(src, logName))
	if err != nil {
		t.Fatal(err)
	}

	prefixes := 0
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(dir, testOpts())
		if err != nil {
			// Refusal is allowed only as a corruption verdict, and a
			// pure truncation must never produce one.
			t.Fatalf("cut %d: clean truncation refused: %v", cut, err)
		}
		n := len(rec.Tail)
		if n > K {
			t.Fatalf("cut %d: recovered %d records from a log of %d", cut, n, K)
		}
		if n > 0 && !reflect.DeepEqual(rec.Tail, want[:n]) {
			t.Fatalf("cut %d: recovered tail is not a prefix", cut)
		}
		if n == K && rec.TornBytes != 0 {
			t.Fatalf("cut %d: full recovery but %d torn bytes", cut, rec.TornBytes)
		}
		// Recovery must leave an appendable log: the next decision
		// lands at record n+... and survives another reopen.
		if err := l2.AppendDecision(testDecision(1000 + cut)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, rec3, err := Open(dir, testOpts())
		if err != nil {
			t.Fatalf("cut %d: reopen after repair: %v", cut, err)
		}
		if len(rec3.Tail) != n+1 {
			t.Fatalf("cut %d: post-repair log has %d records, want %d", cut, len(rec3.Tail), n+1)
		}
		l3.Close()
		if n == K {
			prefixes++
		}
	}
	if prefixes == 0 {
		t.Fatal("no cut recovered the full log (final boundary must)")
	}
}

// TestMidFileDamageRefuses: a checksum failure that is not the last
// frame cannot be a torn write, so Open must refuse.
func TestMidFileDamageRefuses(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, testOpts())
	for i := 0; i < 10; i++ {
		if err := l.AppendDecision(testDecision(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := func(off int) {
		t.Helper()
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Magic damage and mid-file payload damage are corruption.
	for _, off := range []int{0, len(full) / 2} {
		flip(off)
		_, _, err := Open(dir, testOpts())
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %d: err = %v, want CorruptionError", off, err)
		}
	}

	// Damage inside the final frame is indistinguishable from a torn
	// write: recovery drops that frame and keeps the prefix.
	flip(len(full) - 3)
	l2, rec, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("tail damage refused: %v", err)
	}
	defer l2.Close()
	if len(rec.Tail) != 9 || rec.TornBytes == 0 {
		t.Fatalf("tail damage recovered %d records, %d torn bytes; want 9 records",
			len(rec.Tail), rec.TornBytes)
	}
}

func TestConfigMismatchRefuses(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, testOpts())
	if err := l.AppendDecision(testDecision(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.ConfigDigest++
	_, _, err := Open(dir, opts)
	var cm *ConfigMismatchError
	if !errors.As(err, &cm) {
		t.Fatalf("err = %v, want ConfigMismatchError", err)
	}
	// A renamed placer under the same digest is also refused.
	opts = testOpts()
	opts.Name = "meyerson"
	if _, _, err := Open(dir, opts); err == nil {
		t.Fatal("placer name mismatch accepted")
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, testOpts())
	for i := 0; i < 10; i++ {
		if err := l.AppendDecision(testDecision(i)); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Metrics().Size
	snap := &Snapshot{
		PlacerState: []byte("placer-state-bytes"),
		Requests:    10, Opened: 3, WalkBits: 0x4045000000000000, SimBits: 0x4059000000000000,
	}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if snap.Records != 10 {
		t.Fatalf("snapshot stamped Records=%d, want 10", snap.Records)
	}
	if m := l.Metrics(); m.Truncations != 1 || m.Size >= sizeBefore {
		t.Fatalf("after snapshot: truncations=%d size=%d (before %d)", m.Truncations, m.Size, sizeBefore)
	}
	tail := []any{testDecision(100), testDecision(101)}
	for _, d := range tail {
		if err := l.AppendDecision(d.(DecisionRecord)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, testOpts())
	defer l2.Close()
	if rec.Snapshot == nil {
		t.Fatal("snapshot not recovered")
	}
	s := rec.Snapshot
	if s.Records != 10 || string(s.PlacerState) != "placer-state-bytes" ||
		s.Requests != 10 || s.Opened != 3 ||
		s.WalkBits != snap.WalkBits || s.SimBits != snap.SimBits {
		t.Fatalf("recovered snapshot %+v", s)
	}
	if !reflect.DeepEqual(rec.Tail, tail) {
		t.Fatalf("recovered tail %+v, want %+v", rec.Tail, tail)
	}
	if got := l2.Records(); got != 12 {
		t.Fatalf("Records() = %d, want 12", got)
	}
}

// TestSnapshotCrashWindows exercises every interruption point of the
// snapshot protocol by reconstructing the on-disk states it can leave.
func TestSnapshotCrashWindows(t *testing.T) {
	// Build a reference dir: 8 records, snapshot at 5, 3 in the tail.
	ref := t.TempDir()
	l, _ := mustOpen(t, ref, testOpts())
	for i := 0; i < 5; i++ {
		if err := l.AppendDecision(testDecision(i)); err != nil {
			t.Fatal(err)
		}
	}
	preSnapLog, err := os.ReadFile(filepath.Join(ref, logName))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(&Snapshot{PlacerState: []byte("s"), Requests: 5}); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if err := l.AppendDecision(testDecision(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(ref, snapName))
	if err != nil {
		t.Fatal(err)
	}

	write := func(t *testing.T, dir, name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("snapshot committed, log not yet truncated", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, logName, preSnapLog) // old log still covers records 0..4
		write(t, dir, snapName, snapBytes) // new snapshot covers 5
		l2, rec := mustOpen(t, dir, testOpts())
		defer l2.Close()
		if rec.Snapshot == nil || rec.Snapshot.Records != 5 {
			t.Fatalf("snapshot not honoured: %+v", rec.Snapshot)
		}
		if len(rec.Tail) != 0 {
			t.Fatalf("covered records replayed: %+v", rec.Tail)
		}
		if got := l2.Records(); got != 5 {
			t.Fatalf("Records() = %d, want 5", got)
		}
	})

	t.Run("stray tmp files from a crashed snapshot are discarded", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, logName, preSnapLog)
		write(t, dir, snapTmpName, []byte("half-written"))
		write(t, dir, logNewName, []byte("half-written"))
		l2, rec := mustOpen(t, dir, testOpts())
		defer l2.Close()
		if rec.Snapshot != nil || len(rec.Tail) != 5 {
			t.Fatalf("recovered %+v", rec)
		}
		for _, stray := range []string{snapTmpName, logNewName} {
			if _, err := os.Stat(filepath.Join(dir, stray)); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("%s not cleaned up", stray)
			}
		}
	})

	t.Run("snapshot deleted out from under a truncated log", func(t *testing.T) {
		dir := t.TempDir()
		full, err := os.ReadFile(filepath.Join(ref, logName))
		if err != nil {
			t.Fatal(err)
		}
		write(t, dir, logName, full) // genesis base 5, no snapshot
		_, _, err = Open(dir, testOpts())
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want CorruptionError", err)
		}
	})

	t.Run("log deleted out from under a snapshot", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, snapName, snapBytes)
		_, _, err := Open(dir, testOpts())
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want CorruptionError", err)
		}
	})

	t.Run("damaged snapshot refuses", func(t *testing.T) {
		dir := t.TempDir()
		full, err := os.ReadFile(filepath.Join(ref, logName))
		if err != nil {
			t.Fatal(err)
		}
		write(t, dir, logName, full)
		mut := append([]byte(nil), snapBytes...)
		mut[len(mut)/2] ^= 0x10
		write(t, dir, snapName, mut)
		_, _, err = Open(dir, testOpts())
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want CorruptionError", err)
		}
	})
}

func TestSyncBatching(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SyncEvery = 4
	l, _ := mustOpen(t, dir, opts)
	defer l.Close()
	base := l.Metrics().Fsyncs
	for i := 0; i < 8; i++ {
		if err := l.AppendDecision(testDecision(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Metrics().Fsyncs - base; got != 2 {
		t.Fatalf("8 appends at SyncEvery=4 issued %d fsyncs, want 2", got)
	}
	if err := l.AppendDecision(testDecision(8)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Metrics().Fsyncs - base; got != 3 {
		t.Fatalf("explicit Sync did not flush: %d fsyncs, want 3", got)
	}
	// Sync with nothing pending is a no-op.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Metrics().Fsyncs - base; got != 3 {
		t.Fatalf("empty Sync issued an fsync")
	}
	if got := l.Metrics().Appended; got != 9 {
		t.Fatalf("Appended = %d, want 9", got)
	}
}

func TestSnapshotDueCadence(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SnapshotEvery = 3
	l, _ := mustOpen(t, dir, opts)
	defer l.Close()
	for i := 0; i < 2; i++ {
		if err := l.AppendDecision(testDecision(i)); err != nil {
			t.Fatal(err)
		}
		if l.SnapshotDue() {
			t.Fatalf("due after %d records", i+1)
		}
	}
	if err := l.AppendDecision(testDecision(2)); err != nil {
		t.Fatal(err)
	}
	if !l.SnapshotDue() {
		t.Fatal("not due after 3 records")
	}
	if err := l.WriteSnapshot(&Snapshot{PlacerState: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if l.SnapshotDue() {
		t.Fatal("still due after snapshot")
	}
}
