package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// File names inside the log directory. The .tmp/.new files only exist
// transiently during a snapshot; a leftover one is a crashed snapshot
// attempt and is deleted on open (the rename that would have committed
// it never happened, so the previous generation is still authoritative).
const (
	logName     = "wal.log"
	logNewName  = "wal.log.new"
	snapName    = "snapshot.bin"
	snapTmpName = "snapshot.tmp"
)

// ConfigMismatchError reports a log or snapshot written under different
// placer construction inputs than the placer being recovered into.
type ConfigMismatchError struct {
	File string
	Got  uint64 // digest recorded in the file
	Want uint64 // digest of the freshly built placer
}

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("wal: %s was written under config digest %#x, placer has %#x: "+
		"replaying it would silently diverge; move the log directory aside or restore the original configuration",
		e.File, e.Got, e.Want)
}

// Options configures Open.
type Options struct {
	// ConfigDigest and Name identify the placer the log belongs to
	// (core.DurablePlacer.ConfigDigest / OnlinePlacer.Name).
	ConfigDigest uint64
	Name         string
	// SyncEvery batches fsyncs: the file is synced after every
	// SyncEvery appended records. 1 syncs every append; 0 never syncs
	// explicitly (the OS decides), trading durability for throughput.
	SyncEvery int
	// SnapshotEvery makes SnapshotDue report true after that many
	// records since the last snapshot (0 disables the cadence; the
	// owner may still snapshot explicitly).
	SnapshotEvery uint64
}

// Snapshot is the durable placer checkpoint that bounds replay time.
// Records counts every record ever logged (decisions and pickups) at
// capture time; a log whose genesis Base equals Records has an empty
// tail. The serving counters ride along so the server republishes the
// exact pre-crash figures without re-deriving them.
type Snapshot struct {
	ConfigDigest uint64
	Name         string
	Records      uint64
	PlacerState  []byte
	// Serving-path counters at capture time, stored exactly as the
	// server publishes them (walk sum and similarity as float bits).
	Requests uint64
	Opened   uint64
	WalkBits uint64
	SimBits  uint64
	// StationsDigest fingerprints the station set at capture time
	// (core.StationDigest); recovery cross-checks it after restoring
	// PlacerState, catching a placer that deserialized cleanly into
	// the wrong station set.
	StationsDigest uint64
}

const snapVersion uint16 = 1

// Recovered is what Open found on disk: replay the snapshot (if any)
// into a fresh placer, then re-drive Tail through it.
type Recovered struct {
	// Snapshot is the last committed checkpoint, nil if none.
	Snapshot *Snapshot
	// Tail holds the DecisionRecord / PickupRecord values not covered
	// by the snapshot, in log order.
	Tail []any
	// TornBytes is how many trailing bytes were discarded as a torn
	// write (0 for a clean shutdown).
	TornBytes int64
}

// Log is an open write-ahead log. Appends and snapshots must come from
// a single goroutine (the server performs them under its decision
// lock); Metrics is safe to read concurrently.
type Log struct {
	dir  string
	opts Options
	f    *os.File

	records       uint64 // total records ever: genesis base + appends
	sinceSync     int
	sinceSnapshot uint64
	encBuf        []byte // reused append encoding buffer

	appended    atomic.Uint64
	fsyncs      atomic.Uint64
	truncations atomic.Uint64
	size        atomic.Int64
}

// Metrics is a point-in-time reading of the log's counters.
type Metrics struct {
	Appended    uint64 // records appended this process lifetime
	Fsyncs      uint64 // explicit fsyncs issued
	Truncations uint64 // snapshot+truncate cycles completed
	Size        int64  // current log file size in bytes
}

// Open loads (or creates) the log in dir, recovering any existing
// state. Torn tails are truncated in place; corruption and config
// mismatches refuse with an error rather than load wrong state.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	if opts.Name == "" {
		return nil, nil, fmt.Errorf("wal: options must name the placer")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	// Leftover transient files are uncommitted snapshot attempts.
	for _, stray := range []string{snapTmpName, logNewName} {
		if err := os.Remove(filepath.Join(dir, stray)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}

	rec := &Recovered{}
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	if snap != nil {
		if snap.ConfigDigest != opts.ConfigDigest {
			return nil, nil, &ConfigMismatchError{File: snapName, Got: snap.ConfigDigest, Want: opts.ConfigDigest}
		}
		if snap.Name != opts.Name {
			return nil, nil, &CorruptionError{File: snapName,
				Reason: fmt.Sprintf("snapshot is for placer %q, want %q", snap.Name, opts.Name)}
		}
		rec.Snapshot = snap
	}

	l := &Log{dir: dir, opts: opts}
	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if snap != nil {
			// The truncation protocol renames the new log before the
			// old one could ever disappear; a snapshot without a log
			// means the log was deleted out from under us.
			return nil, nil, &CorruptionError{File: logName, Reason: "snapshot present but log missing"}
		}
		if err := l.createLog(Genesis{Base: 0, ConfigDigest: opts.ConfigDigest, Name: opts.Name}); err != nil {
			return nil, nil, err
		}
		return l, rec, nil
	case err != nil:
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	scan, err := ScanLog(logName, data)
	if err != nil {
		return nil, nil, err
	}
	if scan.TornOffset >= 0 {
		rec.TornBytes = int64(len(data)) - scan.TornOffset
	}
	if scan.Genesis == nil {
		// The tail tore before a complete genesis: the crash happened
		// during file creation, so no decision can have been logged.
		// With a snapshot present that story is impossible — refuse.
		if snap != nil {
			return nil, nil, &CorruptionError{File: logName, Reason: "snapshot present but log has no genesis"}
		}
		if err := os.Remove(logPath); err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		if err := l.createLog(Genesis{Base: 0, ConfigDigest: opts.ConfigDigest, Name: opts.Name}); err != nil {
			return nil, nil, err
		}
		return l, rec, nil
	}

	g := scan.Genesis
	if g.ConfigDigest != opts.ConfigDigest {
		return nil, nil, &ConfigMismatchError{File: logName, Got: g.ConfigDigest, Want: opts.ConfigDigest}
	}
	if g.Name != opts.Name {
		return nil, nil, &CorruptionError{File: logName,
			Reason: fmt.Sprintf("log is for placer %q, want %q", g.Name, opts.Name)}
	}

	// Reconcile snapshot coverage with the log's base. The snapshot is
	// committed before the log is truncated, so the snapshot may cover
	// records the (old) log still holds — skip them — but a log base
	// beyond the snapshot means the snapshot file was lost.
	var snapRecords uint64
	if snap != nil {
		snapRecords = snap.Records
	}
	if g.Base > snapRecords {
		return nil, nil, &CorruptionError{File: logName,
			Reason: fmt.Sprintf("log starts at record %d but snapshot covers only %d", g.Base, snapRecords)}
	}
	skip := snapRecords - g.Base
	if skip > uint64(len(scan.Records)) {
		return nil, nil, &CorruptionError{File: snapName,
			Reason: fmt.Sprintf("snapshot covers %d records but log ends at %d",
				snapRecords, g.Base+uint64(len(scan.Records)))}
	}
	rec.Tail = scan.Records[skip:]
	l.records = g.Base + uint64(len(scan.Records))
	l.sinceSnapshot = l.records - snapRecords

	f, err := os.OpenFile(logPath, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	keep := int64(len(data))
	if scan.TornOffset >= 0 {
		keep = scan.TornOffset
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		l.fsyncs.Add(1)
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.size.Store(keep)
	return l, rec, nil
}

// createLog writes a fresh log file containing only the genesis and
// syncs it (and the directory) so the file survives a crash.
func (l *Log) createLog(g Genesis) error {
	buf := appendFrame(logMagic[:len(logMagic):len(logMagic)], appendGenesisPayload(nil, g))
	path := filepath.Join(l.dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.fsyncs.Add(1)
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.records = g.Base
	l.sinceSnapshot = 0
	l.size.Store(int64(len(buf)))
	return nil
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Records returns the total number of records ever logged (snapshot
// base plus appends).
func (l *Log) Records() uint64 { return l.records }

// Metrics returns a point-in-time reading of the log's counters; safe
// to call concurrently with appends.
func (l *Log) Metrics() Metrics {
	return Metrics{
		Appended:    l.appended.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Truncations: l.truncations.Load(),
		Size:        l.size.Load(),
	}
}

// AppendDecision durably logs one placement decision. The record is on
// disk (modulo SyncEvery batching) when the call returns.
func (l *Log) AppendDecision(d DecisionRecord) error {
	return l.append(appendDecisionPayload(l.encBuf[:0], d))
}

// AppendPickup durably logs one station removal.
func (l *Log) AppendPickup(p PickupRecord) error {
	return l.append(appendPickupPayload(l.encBuf[:0], p))
}

func (l *Log) append(payload []byte) error {
	l.encBuf = payload[:0]
	frame := appendFrame(payload[len(payload):], payload)
	n, err := l.f.Write(frame)
	l.size.Add(int64(n))
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.records++
	l.sinceSnapshot++
	l.appended.Add(1)
	l.sinceSync++
	if l.opts.SyncEvery > 0 && l.sinceSync >= l.opts.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Sync forces any batched appends to disk.
func (l *Log) Sync() error {
	if l.sinceSync == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.sinceSync = 0
	l.fsyncs.Add(1)
	return nil
}

// SnapshotDue reports whether the snapshot cadence has elapsed.
func (l *Log) SnapshotDue() bool {
	return l.opts.SnapshotEvery > 0 && l.sinceSnapshot >= l.opts.SnapshotEvery
}

// WriteSnapshot commits a checkpoint and truncates the log, bounding
// future recovery to the records appended after this call. The caller
// fills PlacerState and the serving counters; Records, ConfigDigest
// and Name are stamped here. Commit order makes every crash window
// recoverable: the snapshot is fsynced and renamed into place first,
// then a fresh log (genesis Base = Records) atomically replaces the
// old one — a crash between the renames leaves a snapshot that covers
// a prefix of the old log, which Open skips.
func (l *Log) WriteSnapshot(s *Snapshot) error {
	if err := l.Sync(); err != nil {
		return err
	}
	s.ConfigDigest = l.opts.ConfigDigest
	s.Name = l.opts.Name
	s.Records = l.records

	if err := commitFile(l.dir, snapTmpName, snapName, encodeSnapshot(s)); err != nil {
		return err
	}
	l.fsyncs.Add(1)

	g := Genesis{Base: l.records, ConfigDigest: l.opts.ConfigDigest, Name: l.opts.Name}
	newLog := appendFrame(logMagic[:len(logMagic):len(logMagic)], appendGenesisPayload(nil, g))
	if err := commitFile(l.dir, logNewName, logName, newLog); err != nil {
		return err
	}
	l.fsyncs.Add(1)

	// The rename replaced the file under our descriptor; reopen.
	old := l.f
	f, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen after truncation: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	old.Close()
	l.sinceSnapshot = 0
	l.sinceSync = 0
	l.truncations.Add(1)
	l.size.Store(int64(len(newLog)))
	return nil
}

// commitFile atomically replaces dir/final with content via a synced
// temporary file and rename, then syncs the directory.
func commitFile(dir, tmp, final string, content []byte) error {
	tmpPath := filepath.Join(dir, tmp)
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, werr := f.Write(content)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("wal: write %s: %w", tmp, werr)
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, final)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// ---- snapshot file codec -----------------------------------------------

// encodeSnapshot renders the snapshot file image: magic, then one
// checksummed frame holding the whole snapshot payload.
func encodeSnapshot(s *Snapshot) []byte {
	p := []byte{recGenesis} // reuse the type byte slot; snapshots have one record kind
	p = binary.LittleEndian.AppendUint16(p, snapVersion)
	p = binary.LittleEndian.AppendUint64(p, s.ConfigDigest)
	p = binary.LittleEndian.AppendUint64(p, s.Records)
	p = binary.LittleEndian.AppendUint64(p, s.Requests)
	p = binary.LittleEndian.AppendUint64(p, s.Opened)
	p = binary.LittleEndian.AppendUint64(p, s.WalkBits)
	p = binary.LittleEndian.AppendUint64(p, s.SimBits)
	p = binary.LittleEndian.AppendUint64(p, s.StationsDigest)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(s.Name)))
	p = append(p, s.Name...)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(s.PlacerState)))
	p = append(p, s.PlacerState...)
	return appendFrame(snapMagic[:len(snapMagic):len(snapMagic)], p)
}

// readSnapshot loads dir/snapshot.bin; (nil, nil) when absent. The
// snapshot is committed by atomic rename, so any damage is corruption,
// never a torn write.
func readSnapshot(dir string) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return decodeSnapshot(data)
}

func decodeSnapshot(data []byte) (*Snapshot, error) {
	corrupt := func(off int64, reason string) (*Snapshot, error) {
		return nil, &CorruptionError{File: snapName, Offset: off, Reason: reason}
	}
	if len(data) < len(snapMagic)+frameHeaderLen {
		return corrupt(0, "file too short")
	}
	if string(data[:len(snapMagic)]) != string(snapMagic) {
		return corrupt(0, "bad magic")
	}
	off := int64(len(snapMagic))
	length := int64(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if off+frameHeaderLen+length != int64(len(data)) {
		return corrupt(off, "frame length does not match file size")
	}
	p := data[off+frameHeaderLen:]
	if crc32.ChecksumIEEE(p) != sum {
		return corrupt(off, "checksum mismatch")
	}
	const fixed = 1 + 2 + 7*8 + 4
	if len(p) < fixed || p[0] != recGenesis {
		return corrupt(off, "malformed snapshot payload")
	}
	if v := binary.LittleEndian.Uint16(p[1:]); v != snapVersion {
		return corrupt(off, fmt.Sprintf("snapshot version %d, want %d", v, snapVersion))
	}
	s := &Snapshot{
		ConfigDigest:   binary.LittleEndian.Uint64(p[3:]),
		Records:        binary.LittleEndian.Uint64(p[11:]),
		Requests:       binary.LittleEndian.Uint64(p[19:]),
		Opened:         binary.LittleEndian.Uint64(p[27:]),
		WalkBits:       binary.LittleEndian.Uint64(p[35:]),
		SimBits:        binary.LittleEndian.Uint64(p[43:]),
		StationsDigest: binary.LittleEndian.Uint64(p[51:]),
	}
	nameLen := int(binary.LittleEndian.Uint32(p[59:]))
	rest := p[fixed:]
	if nameLen > len(rest) {
		return corrupt(off, "snapshot name overruns payload")
	}
	s.Name = string(rest[:nameLen])
	rest = rest[nameLen:]
	if len(rest) < 4 {
		return corrupt(off, "snapshot state length missing")
	}
	stateLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if stateLen != len(rest) {
		return corrupt(off, "snapshot state length does not match payload")
	}
	s.PlacerState = append([]byte(nil), rest...)
	return s, nil
}
