// Package wal implements the durable decision log behind the serving
// path: an append-only, checksummed, length-prefixed binary log of
// placement decisions (and station pickups), plus a snapshot file that
// bounds replay time. The log records the exact request stream the
// placer consumed, so recovery re-drives it through a freshly seeded
// placer and arrives at bit-identical state (see core.DurablePlacer).
//
// # File format
//
// A log file is an 8-byte magic followed by frames. Each frame is
//
//	u32 LE payload length | u32 LE CRC-32 (IEEE) of payload | payload
//
// and the payload's first byte is the record type. The first record is
// always a genesis record naming the engine, its config digest and the
// number of records already covered by the snapshot file; decision and
// pickup records follow in arrival order.
//
// # Torn tails vs corruption
//
// A crash can tear the last frame; nothing else. Scan therefore
// classifies damage by position: an incomplete frame that runs to the
// exact end of the file is a torn tail (recoverable — the bytes are
// discarded and the log continues from the last full frame), while a
// damaged frame with more data after it, an implausible length or a
// mid-file checksum failure is corruption (the log refuses to load
// rather than guess at state).
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/geo"
)

// logMagic opens every log file; snapMagic every snapshot file. The
// trailing version byte is bumped on any layout change.
var (
	logMagic  = []byte("ESWAL\x00\x001")
	snapMagic = []byte("ESSNAP\x001")
)

// Record types (payload byte 0).
const (
	recGenesis  = 'G'
	recDecision = 'D'
	recPickup   = 'P'
)

// genesisVersion is the genesis payload layout version.
const genesisVersion uint16 = 1

// maxRecordLen bounds a frame's payload so a corrupted length prefix
// cannot trigger a huge allocation: decisions and pickups are fixed
// size, and a genesis only carries a short engine name.
const maxRecordLen = 1 << 16

// frameHeaderLen is the length prefix plus the checksum.
const frameHeaderLen = 8

// Genesis is the mandatory first record of every log file.
type Genesis struct {
	// Base is the number of records already covered by the snapshot
	// file when this log was (re)created; replay skips that many.
	Base uint64
	// ConfigDigest fingerprints the placer's construction inputs
	// (core.DurablePlacer.ConfigDigest); recovery refuses a log whose
	// digest does not match the freshly built placer.
	ConfigDigest uint64
	// Name is the placer's algorithm name, for error messages.
	Name string
}

// DecisionRecord logs one accepted placement: the request destination
// and the decision the placer returned for it. Coordinates and the
// walk figure are stored as float bit patterns, so replay verification
// can demand exact equality.
type DecisionRecord struct {
	Dest         geo.Point
	Station      geo.Point
	StationIndex int
	Opened       bool
	Walk         float64
}

// PickupRecord logs a station removal (the paper's footnote-2 pickup
// path) so replay can re-drive core.StationRemover.RemoveStation.
type PickupRecord struct {
	StationIndex int
}

// ---- encoding ----------------------------------------------------------

// appendFrame appends the framed payload (length, checksum, payload).
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

func appendGenesisPayload(dst []byte, g Genesis) []byte {
	dst = append(dst, recGenesis)
	dst = binary.LittleEndian.AppendUint16(dst, genesisVersion)
	dst = binary.LittleEndian.AppendUint64(dst, g.Base)
	dst = binary.LittleEndian.AppendUint64(dst, g.ConfigDigest)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.Name)))
	return append(dst, g.Name...)
}

func appendDecisionPayload(dst []byte, d DecisionRecord) []byte {
	dst = append(dst, recDecision)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Dest.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Dest.Y))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Station.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Station.Y))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Walk))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(d.StationIndex)))
	opened := byte(0)
	if d.Opened {
		opened = 1
	}
	return append(dst, opened)
}

func appendPickupPayload(dst []byte, p PickupRecord) []byte {
	dst = append(dst, recPickup)
	return binary.LittleEndian.AppendUint64(dst, uint64(int64(p.StationIndex)))
}

// Fixed payload sizes for the non-genesis records.
const (
	decisionPayloadLen = 1 + 6*8 + 1
	pickupPayloadLen   = 1 + 8
)

// ---- decoding ----------------------------------------------------------

// DecodeRecord decodes one checksum-verified frame payload into a
// Genesis, DecisionRecord or PickupRecord.
func DecodeRecord(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	switch payload[0] {
	case recGenesis:
		return decodeGenesis(payload)
	case recDecision:
		return decodeDecision(payload)
	case recPickup:
		return decodePickup(payload)
	default:
		return nil, fmt.Errorf("wal: unknown record type %#x", payload[0])
	}
}

func decodeGenesis(p []byte) (Genesis, error) {
	const fixed = 1 + 2 + 8 + 8 + 4
	if len(p) < fixed {
		return Genesis{}, fmt.Errorf("wal: genesis record truncated (%d bytes)", len(p))
	}
	if v := binary.LittleEndian.Uint16(p[1:]); v != genesisVersion {
		return Genesis{}, fmt.Errorf("wal: genesis version %d, want %d", v, genesisVersion)
	}
	g := Genesis{
		Base:         binary.LittleEndian.Uint64(p[3:]),
		ConfigDigest: binary.LittleEndian.Uint64(p[11:]),
	}
	nameLen := binary.LittleEndian.Uint32(p[19:])
	if uint64(fixed)+uint64(nameLen) != uint64(len(p)) {
		return Genesis{}, fmt.Errorf("wal: genesis name length %d does not match payload", nameLen)
	}
	g.Name = string(p[fixed:])
	return g, nil
}

func decodeDecision(p []byte) (DecisionRecord, error) {
	if len(p) != decisionPayloadLen {
		return DecisionRecord{}, fmt.Errorf("wal: decision record is %d bytes, want %d", len(p), decisionPayloadLen)
	}
	if p[49] > 1 {
		return DecisionRecord{}, fmt.Errorf("wal: decision opened flag %d", p[49])
	}
	return DecisionRecord{
		Dest: geo.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(p[1:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(p[9:])),
		},
		Station: geo.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(p[17:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(p[25:])),
		},
		Walk:         math.Float64frombits(binary.LittleEndian.Uint64(p[33:])),
		StationIndex: int(int64(binary.LittleEndian.Uint64(p[41:]))),
		Opened:       p[49] == 1,
	}, nil
}

func decodePickup(p []byte) (PickupRecord, error) {
	if len(p) != pickupPayloadLen {
		return PickupRecord{}, fmt.Errorf("wal: pickup record is %d bytes, want %d", len(p), pickupPayloadLen)
	}
	return PickupRecord{StationIndex: int(int64(binary.LittleEndian.Uint64(p[1:])))}, nil
}

// ---- scanning ----------------------------------------------------------

// CorruptionError reports damage that cannot be a torn tail; the log
// refuses to load rather than reconstruct wrong state.
type CorruptionError struct {
	File   string
	Offset int64
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: %s corrupt at offset %d: %s", e.File, e.Offset, e.Reason)
}

// ScanResult is the outcome of scanning a log image.
type ScanResult struct {
	// Genesis is the log's first record; nil when the tail tore before
	// a complete genesis was ever written (a crash during file
	// creation, before any decision could have been logged).
	Genesis *Genesis
	// Records holds the decoded DecisionRecord / PickupRecord values
	// after the genesis, in log order.
	Records []any
	// TornOffset is the byte offset of a torn tail to truncate at, or
	// -1 when the image ends on a frame boundary.
	TornOffset int64
}

// ScanLog decodes a log image, classifying damage per the package
// policy: returns a *CorruptionError for mid-file damage, and reports
// (never errors on) a torn tail via TornOffset.
func ScanLog(name string, data []byte) (*ScanResult, error) {
	res := &ScanResult{TornOffset: -1}
	if len(data) < len(logMagic) {
		if bytes.HasPrefix(logMagic, data) {
			res.TornOffset = 0
			return res, nil
		}
		return nil, &CorruptionError{File: name, Offset: 0, Reason: "bad magic"}
	}
	if !bytes.Equal(data[:len(logMagic)], logMagic) {
		return nil, &CorruptionError{File: name, Offset: 0, Reason: "bad magic"}
	}
	off := int64(len(logMagic))
	for {
		rem := int64(len(data)) - off
		if rem == 0 {
			return res, nil
		}
		if rem < frameHeaderLen {
			res.TornOffset = off
			return res, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 || length > maxRecordLen {
			return nil, &CorruptionError{File: name, Offset: off,
				Reason: fmt.Sprintf("implausible record length %d", length)}
		}
		if off+frameHeaderLen+length > int64(len(data)) {
			res.TornOffset = off
			return res, nil
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+frameHeaderLen : off+frameHeaderLen+length]
		if crc32.ChecksumIEEE(payload) != sum {
			if off+frameHeaderLen+length == int64(len(data)) {
				// The damaged frame is the last thing in the file: a
				// torn write. Anywhere else it would be corruption.
				res.TornOffset = off
				return res, nil
			}
			return nil, &CorruptionError{File: name, Offset: off, Reason: "checksum mismatch"}
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// The frame checksummed clean but does not decode: that is
			// a writer bug or tampering, never a torn write.
			return nil, &CorruptionError{File: name, Offset: off, Reason: err.Error()}
		}
		if g, ok := rec.(Genesis); ok {
			if res.Genesis != nil {
				return nil, &CorruptionError{File: name, Offset: off, Reason: "duplicate genesis record"}
			}
			res.Genesis = &g
		} else {
			if res.Genesis == nil {
				return nil, &CorruptionError{File: name, Offset: off, Reason: "record precedes genesis"}
			}
			res.Records = append(res.Records, rec)
		}
		off += frameHeaderLen + length
	}
}
