package stats

import (
	"errors"
	"testing"

	"repro/internal/geo"
)

func TestPermutationPValueValidation(t *testing.T) {
	pts := SamplePoints(NewRNG(1), UniformDist{Box: geo.Square(geo.Pt(0, 0), 100)}, 20)
	if _, _, err := PermutationPValue(nil, pts, 10, 1); !errors.Is(err, ErrEmptySample) {
		t.Errorf("empty a: %v", err)
	}
	if _, _, err := PermutationPValue(pts, pts, 0, 1); err == nil {
		t.Error("zero rounds should error")
	}
}

func TestPermutationPValueNullUniform(t *testing.T) {
	// Same-distribution samples: the p-value should be unremarkable
	// (well above typical significance levels).
	rng := NewRNG(3)
	box := geo.Square(geo.Pt(0, 0), 1000)
	a := SamplePoints(rng, UniformDist{Box: box}, 60)
	b := SamplePoints(rng, UniformDist{Box: box}, 60)
	_, p, err := PermutationPValue(a, b, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.05 {
		t.Errorf("null p-value %v unexpectedly significant", p)
	}
}

func TestPermutationPValueDetectsShift(t *testing.T) {
	rng := NewRNG(4)
	a := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 400)}, 60)
	b := SamplePoints(rng, NormalDist{Center: geo.Pt(1500, 1500), StdDev: 50}, 60)
	observed, p, err := PermutationPValue(a, b, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if observed < 0.9 {
		t.Errorf("disjoint samples D=%v, want ~1", observed)
	}
	if p > 0.01 {
		t.Errorf("shift p-value %v, want <= 0.01", p)
	}
}

func TestPermutationPValueInUnitRange(t *testing.T) {
	rng := NewRNG(5)
	a := SamplePoints(rng, NormalDist{Center: geo.Pt(0, 0), StdDev: 100}, 30)
	b := SamplePoints(rng, NormalDist{Center: geo.Pt(60, 0), StdDev: 100}, 30)
	_, p, err := PermutationPValue(a, b, 99, 11)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Errorf("p=%v outside (0,1]", p)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	rng := NewRNG(6)
	a := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 500)}, 40)
	b := SamplePoints(rng, NormalDist{Center: geo.Pt(250, 250), StdDev: 120}, 40)
	_, p1, err := PermutationPValue(a, b, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := PermutationPValue(a, b, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("same seed gave %v and %v", p1, p2)
	}
}

func TestPermutationDoesNotMutateInputs(t *testing.T) {
	rng := NewRNG(8)
	a := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 500)}, 25)
	b := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 500)}, 25)
	aCopy := append([]geo.Point(nil), a...)
	bCopy := append([]geo.Point(nil), b...)
	if _, _, err := PermutationPValue(a, b, 50, 1); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != aCopy[i] {
			t.Fatal("input a mutated")
		}
	}
	for i := range b {
		if b[i] != bCopy[i] {
			t.Fatal("input b mutated")
		}
	}
}

func TestSignificantShift(t *testing.T) {
	rng := NewRNG(9)
	hist := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 400)}, 50)
	same := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 400)}, 50)
	far := SamplePoints(rng, NormalDist{Center: geo.Pt(5000, 5000), StdDev: 30}, 50)

	if _, err := SignificantShift(hist, same, 0, 50, 1); err == nil {
		t.Error("alpha 0 should error")
	}
	shifted, err := SignificantShift(hist, far, 0.05, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !shifted {
		t.Error("disjoint distributions should be a significant shift")
	}
	stable, err := SignificantShift(hist, same, 0.01, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Error("same distribution flagged as shift at alpha=0.01")
	}
}
