// Package stats provides the statistical machinery behind E-Sharing:
// seeded random sources, the 2-D point distributions used by the penalty
// evaluation (Fig. 9, Table III), Peacock's two-dimensional
// Kolmogorov–Smirnov test (Section III-D), and summary statistics such as
// the RMSE used by the prediction engine (Eq. 14).
package stats

import (
	"math"
	"math/rand/v2"
)

// Stream identifiers for NewRNGStream. Every component that owns a
// random stream draws from its own stream, so two components seeded
// with the same user-facing seed (a common configuration: one
// experiment seed drives the generator, the placer and the simulator)
// never consume correlated randomness. The identifiers are part of the
// reproducibility contract: renumbering them changes every downstream
// figure, so append only.
const (
	StreamDefault uint64 = iota
	StreamMeyerson
	StreamOnlineKMeans
	StreamESharing
	StreamCharging
	StreamPrivacy
	StreamDataset
	StreamLSTMInit
	StreamLSTMShuffle
	StreamClientJitter
)

// streamSpread is an odd multiplier (SplitMix64's increment) that
// spreads consecutive stream identifiers across the PCG state space.
const streamSpread = 0xbf58476d1ce4e5b9

// NewRNG returns a deterministic PCG-backed source for the given seed —
// stream 0 of NewRNGStream. Every experiment in the repository routes
// randomness through explicit seeds so that tables and figures
// regenerate bit-identically.
func NewRNG(seed uint64) *rand.Rand {
	return NewRNGStream(seed, StreamDefault)
}

// NewRNGStream returns the stream-th deterministic substream for seed.
// Substreams of one seed are mutually independent PCG instances; use a
// Stream* identifier (or any fixed small integer) to give each
// component its own stream instead of hand-rolling xor constants at the
// call site.
func NewRNGStream(seed, stream uint64) *rand.Rand {
	return rand.New(newPCGStream(seed, stream))
}

// newPCGStream constructs the PCG source behind NewRNGStream; the seed
// derivation here is part of the reproducibility contract (changing it
// changes every downstream figure).
func newPCGStream(seed, stream uint64) *rand.PCG {
	return rand.NewPCG(seed, (seed^0x9e3779b97f4a7c15)+stream*streamSpread)
}

// SnapshotRNG couples a *rand.Rand with its PCG source so the
// generator's exact position in its stream can be marshaled into a
// durable snapshot and restored bit-identically. The embedded Rand
// draws from the same source, so a SnapshotRNG built from
// NewSnapshotRNGStream(seed, stream) emits the identical sequence to
// NewRNGStream(seed, stream).
type SnapshotRNG struct {
	*rand.Rand
	src *rand.PCG
}

// NewSnapshotRNGStream is NewRNGStream with state snapshot support.
func NewSnapshotRNGStream(seed, stream uint64) *SnapshotRNG {
	src := newPCGStream(seed, stream)
	return &SnapshotRNG{Rand: rand.New(src), src: src}
}

// MarshalState serializes the generator's current position.
func (r *SnapshotRNG) MarshalState() ([]byte, error) {
	return r.src.MarshalBinary()
}

// UnmarshalState restores a position captured by MarshalState; draws
// after the restore are bit-identical to draws after the capture.
func (r *SnapshotRNG) UnmarshalState(data []byte) error {
	return r.src.UnmarshalBinary(data)
}

// taskBase offsets per-task substreams far above the Stream* constants
// so NewWorkerRNG(seed, s, task) never collides with NewRNGStream(seed,
// s') for any component stream s'.
const taskBase = uint64(1) << 32

// NewWorkerRNG returns the task-th substream of a component stream —
// the RNG constructor for callbacks running under internal/parallel.
// A parallel map must not share one sequentially-consumed generator
// across tasks (the interleaving would depend on scheduling); instead
// each task derives its own stream from its deterministic identity, the
// task index, so the draws are bit-identical at any worker count:
//
//	parallel.Map(workers, n, func(w, i int) T {
//		rng := stats.NewWorkerRNG(seed, stats.StreamX, uint64(i))
//		...
//	})
//
// Never key the stream on the worker id w — the index→worker mapping
// changes with the worker count.
func NewWorkerRNG(seed, stream, task uint64) *rand.Rand {
	return NewRNGStream(seed, taskBase+stream*taskBase+task)
}

// Normal draws a sample from N(mean, stdDev²) using rng.
func Normal(rng *rand.Rand, mean, stdDev float64) float64 {
	return mean + stdDev*rng.NormFloat64()
}

// Poisson draws a sample from Poisson(lambda). For small lambda it uses
// Knuth's product method; for large lambda it switches to a normal
// approximation with continuity correction, which is ample for the demand
// volumes this repository simulates.
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Exponential draws a sample from Exp(rate), i.e. mean 1/rate.
func Exponential(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / rate
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// WeightedIndex samples an index proportionally to weights. Negative
// weights are treated as zero. It returns -1 if all weights are zero or the
// slice is empty.
func WeightedIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	// Floating point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}
