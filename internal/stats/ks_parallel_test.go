package stats

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geo"
)

// peacock2DFastReference is the sequential seed loop Peacock2DFastWorkers
// must reproduce bit for bit at every worker count.
func peacock2DFastReference(a, b []geo.Point) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	var d float64
	for _, origin := range a {
		if diff := quadrantMaxDiff(a, b, origin.X, origin.Y); diff > d {
			d = diff
		}
	}
	for _, origin := range b {
		if diff := quadrantMaxDiff(a, b, origin.X, origin.Y); diff > d {
			d = diff
		}
	}
	return d, nil
}

func ksSamplePair(seed uint64, na, nb int) (a, b []geo.Point) {
	rng := NewRNG(seed)
	box := geo.Square(geo.Pt(0, 0), 1000)
	a = SamplePoints(rng, UniformDist{Box: box}, na)
	// b drawn from a shifted box so D is neither 0 nor 1, plus a few
	// duplicated points from a to exercise tied coordinates.
	b = SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(300, 300), 1000)}, nb)
	for i := 0; i < len(b) && i < len(a)/10; i++ {
		b[i] = a[i]
	}
	return a, b
}

func TestPeacock2DFastWorkersMatchesReference(t *testing.T) {
	sizes := []struct{ na, nb int }{{1, 1}, {5, 3}, {40, 60}, {120, 120}}
	for _, sz := range sizes {
		a, b := ksSamplePair(uint64(17+sz.na), sz.na, sz.nb)
		want, err := peacock2DFastReference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := Peacock2DFastWorkers(a, b, workers)
			if err != nil {
				t.Fatalf("na=%d nb=%d workers=%d: %v", sz.na, sz.nb, workers, err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("na=%d nb=%d workers=%d: D=%v, want %v (bit-exact)", sz.na, sz.nb, workers, got, want)
			}
		}
	}
}

func TestPeacock2DFastWorkersEmptySample(t *testing.T) {
	pts := []geo.Point{geo.Pt(1, 2)}
	for _, workers := range []int{1, 4} {
		if _, err := Peacock2DFastWorkers(nil, pts, workers); err == nil {
			t.Error("empty a should error")
		}
		if _, err := Peacock2DFastWorkers(pts, nil, workers); err == nil {
			t.Error("empty b should error")
		}
	}
}

// BenchmarkPeacock2DFastReference times the seed loop on the same
// samples as BenchmarkPeacock2DFast for like-for-like speedup numbers.
func BenchmarkPeacock2DFastReference(b *testing.B) {
	for _, n := range []int{100, 500} {
		pa, pb := ksSamplePair(uint64(n), n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := peacock2DFastReference(pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPeacock2DFast(b *testing.B) {
	for _, n := range []int{100, 500} {
		pa, pb := ksSamplePair(uint64(n), n, n)
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Peacock2DFastWorkers(pa, pb, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
