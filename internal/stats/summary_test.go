package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	tests := []struct {
		name      string
		pred, act []float64
		want      float64
		wantErr   bool
	}{
		{"mismatch", []float64{1}, []float64{1, 2}, 0, true},
		{"empty", nil, nil, 0, true},
		{"perfect", []float64{1, 2, 3}, []float64{1, 2, 3}, 0, false},
		{"constant offset", []float64{2, 3, 4}, []float64{1, 2, 3}, 1, false},
		{"known", []float64{0, 0}, []float64{3, 4}, math.Sqrt(12.5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := RMSE(tt.pred, tt.act)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err == nil && math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMAELessOrEqualRMSE(t *testing.T) {
	// MAE <= RMSE always (Jensen); property over random vectors.
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = xs[i] * 0.5
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		mae, err1 := MAE(xs, ys)
		rmse, err2 := RMSE(xs, ys)
		if err1 != nil || err2 != nil {
			return false
		}
		return mae <= rmse+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean=%v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance=%v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev=%v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slices should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v)=%v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmptySample) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q should error")
	}
	single, err := Quantile([]float64{42}, 0.9)
	if err != nil || single != 42 {
		t.Errorf("single element: %v, %v", single, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	minVal, maxVal, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if minVal != -1 || maxVal != 7 {
		t.Errorf("got (%v,%v), want (-1,7)", minVal, maxVal)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("empty: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary wrong: %+v", s)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("empty summary: %+v", z)
	}
}
