package stats

import "testing"

func TestNewRNGStreamZeroMatchesNewRNG(t *testing.T) {
	a := NewRNG(42)
	b := NewRNGStream(42, StreamDefault)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: NewRNG=%d NewRNGStream(.., StreamDefault)=%d", i, x, y)
		}
	}
}

func TestNewRNGStreamsAreIndependent(t *testing.T) {
	streams := []uint64{
		StreamDefault, StreamMeyerson, StreamOnlineKMeans, StreamESharing,
		StreamCharging, StreamPrivacy, StreamDataset, StreamLSTMInit,
		StreamLSTMShuffle, StreamClientJitter,
	}
	seen := make(map[uint64]uint64, len(streams))
	for _, s := range streams {
		first := NewRNGStream(42, s).Uint64()
		if prev, dup := seen[first]; dup {
			t.Fatalf("streams %d and %d share first draw %d", prev, s, first)
		}
		seen[first] = s
	}
}

func TestNewRNGStreamDeterministic(t *testing.T) {
	a := NewRNGStream(7, StreamCharging)
	b := NewRNGStream(7, StreamCharging)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: same (seed, stream) diverged: %d vs %d", i, x, y)
		}
	}
}
