package stats

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func TestPoissonMoments(t *testing.T) {
	tests := []struct {
		name   string
		lambda float64
	}{
		{"small", 2.5},
		{"medium", 12},
		{"large (normal approx)", 80},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := NewRNG(77)
			const n = 20000
			var sum, sum2 float64
			for i := 0; i < n; i++ {
				v := float64(Poisson(rng, tt.lambda))
				sum += v
				sum2 += v * v
			}
			mean := sum / n
			variance := sum2/n - mean*mean
			if math.Abs(mean-tt.lambda) > 0.05*tt.lambda+0.2 {
				t.Errorf("mean=%v, want ~%v", mean, tt.lambda)
			}
			if math.Abs(variance-tt.lambda) > 0.15*tt.lambda+0.5 {
				t.Errorf("variance=%v, want ~%v", variance, tt.lambda)
			}
		})
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	rng := NewRNG(1)
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(5)
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := Normal(rng, 10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean=%v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.1 {
		t.Errorf("sd=%v, want ~3", sd)
	}
}

func TestExponential(t *testing.T) {
	rng := NewRNG(6)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 0.5)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.1 {
		t.Errorf("mean=%v, want ~2", mean)
	}
	if !math.IsInf(Exponential(rng, 0), 1) {
		t.Error("rate 0 should give +Inf")
	}
}

func TestBernoulli(t *testing.T) {
	rng := NewRNG(7)
	if Bernoulli(rng, 0) || Bernoulli(rng, -1) {
		t.Error("p<=0 should be false")
	}
	if !Bernoulli(rng, 1) || !Bernoulli(rng, 2) {
		t.Error("p>=1 should be true")
	}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.02 {
		t.Errorf("empirical p=%v, want ~0.3", frac)
	}
}

func TestWeightedIndex(t *testing.T) {
	rng := NewRNG(8)
	if WeightedIndex(rng, nil) != -1 {
		t.Error("empty weights should give -1")
	}
	if WeightedIndex(rng, []float64{0, 0}) != -1 {
		t.Error("all-zero weights should give -1")
	}
	if WeightedIndex(rng, []float64{-1, 0, 5}) != 2 {
		t.Error("only positive weight should always win")
	}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[WeightedIndex(rng, []float64{1, 2, 7})]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		if frac := float64(c) / n; math.Abs(frac-want[i]) > 0.02 {
			t.Errorf("index %d frequency %v, want ~%v", i, frac, want[i])
		}
	}
}

func TestUniformDistInBox(t *testing.T) {
	box := geo.NewBBox(geo.Pt(100, 200), geo.Pt(300, 500))
	rng := NewRNG(9)
	d := UniformDist{Box: box}
	for i := 0; i < 1000; i++ {
		if p := d.Sample(rng); !box.Contains(p) {
			t.Fatalf("sample %v outside %v", p, box)
		}
	}
	if d.Name() != "uniform" {
		t.Error("name mismatch")
	}
}

func TestNormalDistCentering(t *testing.T) {
	rng := NewRNG(10)
	d := NormalDist{Center: geo.Pt(50, -20), StdDev: 5}
	pts := SamplePoints(rng, d, 5000)
	c := geo.Centroid(pts)
	if math.Abs(c.X-50) > 0.5 || math.Abs(c.Y+20) > 0.5 {
		t.Errorf("centroid %v, want ~(50,-20)", c)
	}
	if d.Name() != "normal" {
		t.Error("name mismatch")
	}
}

func TestPoissonRadialDist(t *testing.T) {
	rng := NewRNG(11)
	d := PoissonRadialDist{Center: geo.Pt(0, 0), Lambda: 4, Scale: 100}
	var sumR float64
	const n = 5000
	for i := 0; i < n; i++ {
		sumR += d.Sample(rng).Norm()
	}
	// Mean radius should be lambda*scale = 400.
	if mean := sumR / n; math.Abs(mean-400) > 20 {
		t.Errorf("mean radius %v, want ~400", mean)
	}
	if d.Name() != "poisson" {
		t.Error("name mismatch")
	}
}

func TestNewMixtureValidation(t *testing.T) {
	u := UniformDist{Box: geo.Square(geo.Pt(0, 0), 10)}
	tests := []struct {
		name       string
		components []PointDist
		weights    []float64
		wantErr    bool
	}{
		{"valid", []PointDist{u, u}, []float64{1, 2}, false},
		{"no components", nil, nil, true},
		{"length mismatch", []PointDist{u}, []float64{1, 2}, true},
		{"negative weight", []PointDist{u, u}, []float64{1, -1}, true},
		{"zero total", []PointDist{u}, []float64{0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMixture("m", tt.components, tt.weights)
			if (err != nil) != tt.wantErr {
				t.Errorf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestMixtureSampling(t *testing.T) {
	left := NormalDist{Center: geo.Pt(-1000, 0), StdDev: 1}
	right := NormalDist{Center: geo.Pt(1000, 0), StdDev: 1}
	m, err := NewMixture("two-poi", []PointDist{left, right}, []float64{3, 1})
	if err != nil {
		t.Fatalf("NewMixture: %v", err)
	}
	if m.Name() != "two-poi" {
		t.Error("name mismatch")
	}
	rng := NewRNG(12)
	leftCount := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.Sample(rng).X < 0 {
			leftCount++
		}
	}
	if frac := float64(leftCount) / n; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("left fraction %v, want ~0.75", frac)
	}
}

func TestSamplePointsDeterministic(t *testing.T) {
	d := UniformDist{Box: geo.Square(geo.Pt(0, 0), 100)}
	a := SamplePoints(NewRNG(99), d, 50)
	b := SamplePoints(NewRNG(99), d, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
