package stats

import (
	"errors"
	"sort"

	"repro/internal/geo"
	"repro/internal/parallel"
)

// ErrEmptySample is returned by the KS tests when either sample is empty.
var ErrEmptySample = errors.New("stats: empty sample")

// KS1D computes the two-sample one-dimensional Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) - F_b(x)| between the empirical CDFs of a and b.
func KS1D(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		// Advance past ties in both samples so the CDFs are compared at
		// the step value itself.
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// Peacock2D computes Peacock's two-dimensional two-sample KS statistic
// between point samples a and b:
//
//	D = sup over quadrant origins and the four quadrant orientations of
//	    |H(x,y) - G(x,y)|                                       (Eq. 9)
//
// following Peacock (1983): the supremum is taken over the grid of all
// (x, y) pairs formed from the pooled coordinates, and for each origin the
// four quadrants (x<X,y<Y), (x<X,y>Y), (x>X,y<Y), (x>X,y>Y) are examined.
// For n pooled points this enumerates O(n²) origins and costs O(n³) time,
// the complexity quoted in the paper.
//
// The returned statistic lies in [0, 1]: 0 means the empirical
// distributions are indistinguishable, 1 that they are disjoint.
func Peacock2D(a, b []geo.Point) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	xs := pooledCoords(a, b, func(p geo.Point) float64 { return p.X })
	ys := pooledCoords(a, b, func(p geo.Point) float64 { return p.Y })
	var d float64
	for _, x := range xs {
		for _, y := range ys {
			if diff := quadrantMaxDiff(a, b, x, y); diff > d {
				d = diff
			}
		}
	}
	return d, nil
}

// Peacock2DFast computes the same statistic but restricts quadrant origins
// to the observed sample points instead of the full O(n²) coordinate grid
// (the standard practical variant, e.g. Press et al.). It costs O(n²) and
// is a lower bound on Peacock2D that closely tracks it; the online
// placement loop uses this version, while tests verify its agreement with
// the brute-force reference.
func Peacock2DFast(a, b []geo.Point) (float64, error) {
	return Peacock2DFastWorkers(a, b, parallel.Default())
}

// Peacock2DFastWorkers is Peacock2DFast with an explicit worker count.
// The per-origin quadrant statistic maps over the pooled origins (a's
// points first, then b's — the sequential visiting order) and reduces by
// max. Each origin's O(n) count is independent of every other and the
// max of a set is permutation-invariant, so the result is bit-identical
// at any worker count; workers == 1 runs the sequential seed loop.
func Peacock2DFastWorkers(a, b []geo.Point, workers int) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptySample
	}
	origin := func(i int) geo.Point {
		if i < len(a) {
			return a[i]
		}
		return b[i-len(a)]
	}
	d := parallel.MaxFloat(workers, len(a)+len(b), func(i int) float64 {
		o := origin(i)
		return quadrantMaxDiff(a, b, o.X, o.Y)
	})
	// quadrantMaxDiff is always >= 0, so the -Inf identity never escapes;
	// guard anyway to keep the documented [0, 1] range unconditional.
	if d < 0 {
		d = 0
	}
	return d, nil
}

// Similarity converts a KS statistic into the paper's similarity
// percentage 100·(1-D) used throughout Table IV.
func Similarity(d float64) float64 {
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	return 100 * (1 - d)
}

// SimilarityBand classifies a similarity percentage into the paper's three
// operating regimes (Section V-C), which drive penalty-function selection.
type SimilarityBand int

// Similarity bands from Section V-C.
const (
	// VerySimilar is above 95%: apply the Type II penalty.
	VerySimilar SimilarityBand = iota + 1
	// SimilarBand is 80–95%: apply the Type III penalty.
	SimilarBand
	// LessSimilar is below 80%: apply the Type I penalty.
	LessSimilar
)

// String implements fmt.Stringer.
func (b SimilarityBand) String() string {
	switch b {
	case VerySimilar:
		return "very-similar"
	case SimilarBand:
		return "similar"
	case LessSimilar:
		return "less-similar"
	default:
		return "unknown"
	}
}

// ClassifySimilarity maps a similarity percentage to its band.
func ClassifySimilarity(pct float64) SimilarityBand {
	switch {
	case pct > 95:
		return VerySimilar
	case pct >= 80:
		return SimilarBand
	default:
		return LessSimilar
	}
}

func pooledCoords(a, b []geo.Point, f func(geo.Point) float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	for _, p := range a {
		out = append(out, f(p))
	}
	for _, p := range b {
		out = append(out, f(p))
	}
	sort.Float64s(out)
	// Deduplicate: repeated coordinates produce identical quadrants.
	uniq := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// quadrantMaxDiff returns the largest |H-G| over the four quadrants with
// origin (x, y).
func quadrantMaxDiff(a, b []geo.Point, x, y float64) float64 {
	// Counts per quadrant for sample a: [x<X,y<Y], [x<X,y>=Y],
	// [x>=X,y<Y], [x>=X,y>=Y]. Using a half-open convention consistently
	// across both samples keeps the statistic well defined.
	var ca, cb [4]int
	for _, p := range a {
		ca[quadrantOf(p, x, y)]++
	}
	for _, p := range b {
		cb[quadrantOf(p, x, y)]++
	}
	na, nb := float64(len(a)), float64(len(b))
	var d float64
	for q := 0; q < 4; q++ {
		if diff := abs(float64(ca[q])/na - float64(cb[q])/nb); diff > d {
			d = diff
		}
	}
	return d
}

func quadrantOf(p geo.Point, x, y float64) int {
	q := 0
	if p.X >= x {
		q |= 2
	}
	if p.Y >= y {
		q |= 1
	}
	return q
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
