package stats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
)

func TestKS1D(t *testing.T) {
	tests := []struct {
		name    string
		a, b    []float64
		want    float64
		wantErr bool
	}{
		{"empty a", nil, []float64{1}, 0, true},
		{"empty b", []float64{1}, nil, 0, true},
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0, false},
		{"disjoint", []float64{1, 2, 3}, []float64{10, 11, 12}, 1, false},
		{"half overlap", []float64{1, 2}, []float64{2, 3}, 0.5, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := KS1D(tt.a, tt.b)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err != nil {
				if !errors.Is(err, ErrEmptySample) {
					t.Errorf("want ErrEmptySample, got %v", err)
				}
				return
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("D=%v, want %v", got, tt.want)
			}
		})
	}
}

func TestKS1DDoesNotMutateInput(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{2, 0}
	if _, err := KS1D(a, b); err != nil {
		t.Fatalf("KS1D: %v", err)
	}
	if a[0] != 3 || a[1] != 1 || a[2] != 2 {
		t.Errorf("input a mutated: %v", a)
	}
	if b[0] != 2 || b[1] != 0 {
		t.Errorf("input b mutated: %v", b)
	}
}

func TestPeacock2DIdentical(t *testing.T) {
	pts := SamplePoints(NewRNG(1), UniformDist{Box: geo.Square(geo.Pt(0, 0), 100)}, 40)
	d, err := Peacock2D(pts, pts)
	if err != nil {
		t.Fatalf("Peacock2D: %v", err)
	}
	if d != 0 {
		t.Errorf("identical samples: D=%v, want 0", d)
	}
}

func TestPeacock2DDisjoint(t *testing.T) {
	a := SamplePoints(NewRNG(2), UniformDist{Box: geo.Square(geo.Pt(0, 0), 10)}, 30)
	b := SamplePoints(NewRNG(3), UniformDist{Box: geo.Square(geo.Pt(1000, 1000), 10)}, 30)
	d, err := Peacock2D(a, b)
	if err != nil {
		t.Fatalf("Peacock2D: %v", err)
	}
	if d < 0.99 {
		t.Errorf("disjoint samples: D=%v, want ~1", d)
	}
}

func TestPeacock2DEmpty(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0)}
	if _, err := Peacock2D(nil, pts); !errors.Is(err, ErrEmptySample) {
		t.Errorf("want ErrEmptySample, got %v", err)
	}
	if _, err := Peacock2D(pts, nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("want ErrEmptySample, got %v", err)
	}
	if _, err := Peacock2DFast(nil, pts); !errors.Is(err, ErrEmptySample) {
		t.Errorf("fast: want ErrEmptySample, got %v", err)
	}
}

func TestPeacock2DSameDistSmall(t *testing.T) {
	// Two independent draws from the same distribution should have a
	// small statistic; draws from different distributions a large one.
	box := geo.Square(geo.Pt(0, 0), 1000)
	a := SamplePoints(NewRNG(10), UniformDist{Box: box}, 120)
	b := SamplePoints(NewRNG(11), UniformDist{Box: box}, 120)
	c := SamplePoints(NewRNG(12), NormalDist{Center: geo.Pt(500, 500), StdDev: 60}, 120)

	dSame, err := Peacock2D(a, b)
	if err != nil {
		t.Fatalf("same: %v", err)
	}
	dDiff, err := Peacock2D(a, c)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if dSame >= dDiff {
		t.Errorf("same-dist D=%v should be < different-dist D=%v", dSame, dDiff)
	}
	if dSame > 0.35 {
		t.Errorf("same-dist D=%v unexpectedly large", dSame)
	}
	if dDiff < 0.4 {
		t.Errorf("different-dist D=%v unexpectedly small", dDiff)
	}
}

func TestPeacock2DFastLowerBoundsBrute(t *testing.T) {
	// The fast variant restricts origins to sample points, so it can never
	// exceed the brute-force supremum, and in practice stays very close.
	for seed := uint64(20); seed < 26; seed++ {
		rng := NewRNG(seed)
		a := SamplePoints(rng, NormalDist{Center: geo.Pt(0, 0), StdDev: 100}, 50)
		b := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(-200, -200), 400)}, 50)
		brute, err := Peacock2D(a, b)
		if err != nil {
			t.Fatalf("brute: %v", err)
		}
		fast, err := Peacock2DFast(a, b)
		if err != nil {
			t.Fatalf("fast: %v", err)
		}
		if fast > brute+1e-12 {
			t.Errorf("seed %d: fast %v exceeds brute %v", seed, fast, brute)
		}
		if brute-fast > 0.1 {
			t.Errorf("seed %d: fast %v too far below brute %v", seed, fast, brute)
		}
	}
}

func TestPeacock2DSymmetric(t *testing.T) {
	rng := NewRNG(33)
	a := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 500)}, 40)
	b := SamplePoints(rng, NormalDist{Center: geo.Pt(250, 250), StdDev: 80}, 35)
	d1, err := Peacock2D(a, b)
	if err != nil {
		t.Fatalf("Peacock2D: %v", err)
	}
	d2, err := Peacock2D(b, a)
	if err != nil {
		t.Fatalf("Peacock2D: %v", err)
	}
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestPeacock2DRange(t *testing.T) {
	for seed := uint64(40); seed < 50; seed++ {
		rng := NewRNG(seed)
		a := SamplePoints(rng, UniformDist{Box: geo.Square(geo.Pt(0, 0), 300)}, 20)
		b := SamplePoints(rng, NormalDist{Center: geo.Pt(150, 150), StdDev: 400}, 25)
		d, err := Peacock2D(a, b)
		if err != nil {
			t.Fatalf("Peacock2D: %v", err)
		}
		if d < 0 || d > 1 {
			t.Errorf("seed %d: D=%v out of [0,1]", seed, d)
		}
	}
}

func TestSimilarity(t *testing.T) {
	tests := []struct {
		d    float64
		want float64
	}{
		{0, 100},
		{1, 0},
		{0.25, 75},
		{-0.5, 100}, // clamped
		{1.5, 0},    // clamped
	}
	for _, tt := range tests {
		if got := Similarity(tt.d); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Similarity(%v)=%v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestClassifySimilarity(t *testing.T) {
	tests := []struct {
		pct  float64
		want SimilarityBand
	}{
		{99, VerySimilar},
		{95.01, VerySimilar},
		{95, SimilarBand},
		{88, SimilarBand},
		{80, SimilarBand},
		{79.9, LessSimilar},
		{40, LessSimilar},
	}
	for _, tt := range tests {
		if got := ClassifySimilarity(tt.pct); got != tt.want {
			t.Errorf("ClassifySimilarity(%v)=%v, want %v", tt.pct, got, tt.want)
		}
	}
}

func TestSimilarityBandString(t *testing.T) {
	if VerySimilar.String() != "very-similar" || SimilarityBand(0).String() != "unknown" {
		t.Error("SimilarityBand.String mismatch")
	}
}
