package stats

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/geo"
)

// PointDist generates 2-D points. Section V-B evaluates the penalty
// functions under uniform, Poisson(-radial) and normal request
// distributions; implementations of this interface provide those synthetic
// workloads.
type PointDist interface {
	// Sample draws one point.
	Sample(rng *rand.Rand) geo.Point
	// Name identifies the distribution in reports.
	Name() string
}

// UniformDist draws points uniformly from a bounding box.
type UniformDist struct {
	Box geo.BBox
}

var _ PointDist = UniformDist{}

// Sample implements PointDist.
func (d UniformDist) Sample(rng *rand.Rand) geo.Point {
	return geo.Pt(
		d.Box.MinX+rng.Float64()*d.Box.Width(),
		d.Box.MinY+rng.Float64()*d.Box.Height(),
	)
}

// Name implements PointDist.
func (d UniformDist) Name() string { return "uniform" }

// NormalDist draws points from an isotropic Gaussian centred at Center.
// Requests "aggregate around the origin", the paper's best case for the
// Type II penalty.
type NormalDist struct {
	Center geo.Point
	StdDev float64
}

var _ PointDist = NormalDist{}

// Sample implements PointDist.
func (d NormalDist) Sample(rng *rand.Rand) geo.Point {
	return geo.Pt(
		d.Center.X+d.StdDev*rng.NormFloat64(),
		d.Center.Y+d.StdDev*rng.NormFloat64(),
	)
}

// Name implements PointDist.
func (d NormalDist) Name() string { return "normal" }

// PoissonRadialDist draws points whose distance from Center is
// Poisson(Lambda)·Scale with a uniform angle, concentrating mass in a
// mid-range ring — the paper's "poisson" case that favours the Type III
// penalty.
type PoissonRadialDist struct {
	Center geo.Point
	Lambda float64
	Scale  float64
}

var _ PointDist = PoissonRadialDist{}

// Sample implements PointDist.
func (d PoissonRadialDist) Sample(rng *rand.Rand) geo.Point {
	r := float64(Poisson(rng, d.Lambda)) * d.Scale
	theta := rng.Float64() * 2 * math.Pi
	return geo.Pt(d.Center.X+r*math.Cos(theta), d.Center.Y+r*math.Sin(theta))
}

// Name implements PointDist.
func (d PoissonRadialDist) Name() string { return "poisson" }

// MixtureDist draws from Components[i] with probability Weights[i]. It
// models multi-POI cities: each component is one point of interest.
type MixtureDist struct {
	Components []PointDist
	Weights    []float64
	name       string
}

var _ PointDist = (*MixtureDist)(nil)

// NewMixture validates and builds a mixture distribution.
func NewMixture(name string, components []PointDist, weights []float64) (*MixtureDist, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("stats: mixture %q has no components", name)
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("stats: mixture %q has %d components but %d weights",
			name, len(components), len(weights))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: mixture %q weight %d is negative", name, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: mixture %q has zero total weight", name)
	}
	return &MixtureDist{Components: components, Weights: weights, name: name}, nil
}

// Sample implements PointDist.
func (d *MixtureDist) Sample(rng *rand.Rand) geo.Point {
	i := WeightedIndex(rng, d.Weights)
	if i < 0 {
		i = 0
	}
	return d.Components[i].Sample(rng)
}

// Name implements PointDist.
func (d *MixtureDist) Name() string { return d.name }

// SamplePoints draws n points from dist.
func SamplePoints(rng *rand.Rand, dist PointDist, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = dist.Sample(rng)
	}
	return pts
}
