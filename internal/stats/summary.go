package stats

import (
	"fmt"
	"math"
	"sort"
)

// RMSE returns the root mean square error between predictions and actuals
// (Eq. 14). It errors when the slices differ in length or are empty.
func RMSE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("stats: RMSE length mismatch %d vs %d", len(predicted), len(actual))
	}
	if len(predicted) == 0 {
		return 0, ErrEmptySample
	}
	var sum float64
	for i := range predicted {
		d := predicted[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(predicted))), nil
}

// MAE returns the mean absolute error between predictions and actuals.
func MAE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("stats: MAE length mismatch %d vs %d", len(predicted), len(actual))
	}
	if len(predicted) == 0 {
		return 0, ErrEmptySample
	}
	var sum float64
	for i := range predicted {
		sum += abs(predicted[i] - actual[i])
	}
	return sum / float64(len(predicted)), nil
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than one
// element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It errors on an empty slice or
// out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the extrema of xs; it errors on an empty slice.
func MinMax(xs []float64) (minVal, maxVal float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptySample
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal, nil
}

// Summary captures the descriptive statistics printed by the experiment
// harness.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs; zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	minVal, maxVal, _ := MinMax(xs)
	median, _ := Quantile(xs, 0.5)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    minVal,
		Median: median,
		Max:    maxVal,
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
