package stats

import (
	"fmt"

	"repro/internal/geo"
)

// PermutationPValue estimates the significance of an observed Peacock
// statistic between samples a and b with a permutation test: the pooled
// points are randomly re-split `rounds` times and the p-value is the
// fraction of splits whose statistic is at least as extreme as the
// observed one (with the +1 correction so the estimate is never exactly
// zero). Peacock's 2-D statistic has no closed-form null distribution;
// permutation is the standard distribution-free answer and stays exact
// under the null.
//
// The test uses the O(n²) sample-origin statistic for tractability.
func PermutationPValue(a, b []geo.Point, rounds int, seed uint64) (observed, pValue float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, ErrEmptySample
	}
	if rounds < 1 {
		return 0, 0, fmt.Errorf("stats: permutation rounds %d < 1", rounds)
	}
	observed, err = Peacock2DFast(a, b)
	if err != nil {
		return 0, 0, err
	}
	pooled := make([]geo.Point, 0, len(a)+len(b))
	pooled = append(pooled, a...)
	pooled = append(pooled, b...)
	rng := NewRNG(seed)
	extreme := 0
	for r := 0; r < rounds; r++ {
		rng.Shuffle(len(pooled), func(i, j int) { pooled[i], pooled[j] = pooled[j], pooled[i] })
		d, err := Peacock2DFast(pooled[:len(a)], pooled[len(a):])
		if err != nil {
			return 0, 0, err
		}
		if d >= observed-1e-15 {
			extreme++
		}
	}
	pValue = float64(extreme+1) / float64(rounds+1)
	return observed, pValue, nil
}

// SignificantShift reports whether the live sample differs from the
// historical one at the given significance level alpha (e.g. 0.05), using
// a permutation test with the given budget. It is the rigorous companion
// to the similarity bands of Section V-C: a band switch backed by a
// significant p-value is a true distribution shift rather than sampling
// noise.
func SignificantShift(hist, live []geo.Point, alpha float64, rounds int, seed uint64) (bool, error) {
	if alpha <= 0 || alpha >= 1 {
		return false, fmt.Errorf("stats: significance level %v outside (0,1)", alpha)
	}
	_, p, err := PermutationPValue(hist, live, rounds, seed)
	if err != nil {
		return false, err
	}
	return p <= alpha, nil
}
