package experiments

import (
	"strings"
	"testing"
)

// The experiments in this file train models or sweep many PLP instances;
// they run in seconds-to-tens-of-seconds and are skipped under -short.

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 trains LSTM grids")
	}
	res, err := RunTable2(QuickTable2Config())
	if err != nil {
		t.Fatal(err)
	}
	// The Table II headline: the best LSTM beats both statistical
	// baselines.
	if res.BestLSTM.RMSE >= res.BestMA.RMSE {
		t.Errorf("best LSTM %.1f >= best MA %.1f", res.BestLSTM.RMSE, res.BestMA.RMSE)
	}
	if res.BestLSTM.RMSE >= res.BestARIMA.RMSE {
		t.Errorf("best LSTM %.1f >= best ARIMA %.1f", res.BestLSTM.RMSE, res.BestARIMA.RMSE)
	}
	if res.ImprovementPct <= 0 {
		t.Errorf("improvement %.1f%%, want positive (paper ~30%%)", res.ImprovementPct)
	}
	// back=12 must beat back=3 for the 2-layer model (the daily cycle
	// needs lookback).
	if res.LSTM[2][12] >= res.LSTM[2][3] {
		t.Errorf("2-layer back=12 RMSE %.1f >= back=3 %.1f", res.LSTM[2][12], res.LSTM[2][3])
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestTable2Validation(t *testing.T) {
	cfg := QuickTable2Config()
	cfg.Horizon = 0
	if _, err := RunTable2(cfg); err == nil {
		t.Error("horizon 0 should error")
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 trains an LSTM")
	}
	cfg := Fig8Config{Table2: QuickTable2Config()}
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WeekdayActual) != 24 || len(res.WeekendPredicted) != 24 {
		t.Fatalf("panels must span 24 hours")
	}
	// Predictions must track the scale of the actual series: RMSE well
	// below the series' dynamic range.
	var maxActual float64
	for _, v := range res.WeekdayActual {
		if v > maxActual {
			maxActual = v
		}
	}
	if res.WeekdayRMSE > maxActual/2 {
		t.Errorf("weekday RMSE %.1f vs peak %.1f — predictions not tracking", res.WeekdayRMSE, maxActual)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table5 sweeps regions and trains an LSTM")
	}
	res, err := RunTable5(QuickTable5Config())
	if err != nil {
		t.Fatal(err)
	}
	// Table V ordering by total cost:
	// offline < e-sharing (actual) < meyerson < online k-means,
	// with the predicted variant above actual.
	if !(res.Offline.TotalKm() < res.ESharingAct.TotalKm()) {
		t.Errorf("offline %.1f should lower-bound e-sharing %.1f",
			res.Offline.TotalKm(), res.ESharingAct.TotalKm())
	}
	if !(res.ESharingAct.TotalKm() < res.Meyerson.TotalKm()) {
		t.Errorf("e-sharing %.1f should beat meyerson %.1f",
			res.ESharingAct.TotalKm(), res.Meyerson.TotalKm())
	}
	if !(res.Meyerson.TotalKm() < res.OnlineKMeans.TotalKm()) {
		t.Errorf("meyerson %.1f should beat online k-means %.1f",
			res.Meyerson.TotalKm(), res.OnlineKMeans.TotalKm())
	}
	if res.ESharingAct.TotalKm() > res.ESharingPred.TotalKm() {
		t.Errorf("actual guide %.1f should beat predicted %.1f",
			res.ESharingAct.TotalKm(), res.ESharingPred.TotalKm())
	}
	// Station counts: offline fewest, online k-means most.
	if res.Offline.Stations > res.ESharingAct.Stations {
		t.Errorf("offline opens %.1f > e-sharing %.1f stations",
			res.Offline.Stations, res.ESharingAct.Stations)
	}
	if res.OnlineKMeans.Stations < res.Meyerson.Stations {
		t.Errorf("online k-means %.1f opens fewer than meyerson %.1f",
			res.OnlineKMeans.Stations, res.Meyerson.Stations)
	}
	// Average walk is a plausible human distance (paper: ~180 m).
	if res.AvgWalkPerRequestM <= 0 || res.AvgWalkPerRequestM > 500 {
		t.Errorf("avg walk %.1f m implausible", res.AvgWalkPerRequestM)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestTable5Validation(t *testing.T) {
	cfg := QuickTable5Config()
	cfg.Regions = 0
	if _, err := RunTable5(cfg); err == nil {
		t.Error("zero regions should error")
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table6 sweeps charging rounds")
	}
	res, err := RunTable6(DefaultTable6Config())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[float64]Table6Row{}
	for _, r := range res.Rows {
		rows[r.Alpha] = r
	}
	base := rows[0]
	for _, alpha := range []float64{0.4, 0.7, 1} {
		r := rows[alpha]
		// Incentives must cut service and delay costs and raise the
		// charged percentage.
		if r.ServiceCost >= base.ServiceCost {
			t.Errorf("alpha=%v service %.0f >= baseline %.0f", alpha, r.ServiceCost, base.ServiceCost)
		}
		if r.DelayCost >= base.DelayCost {
			t.Errorf("alpha=%v delay %.0f >= baseline %.0f", alpha, r.DelayCost, base.DelayCost)
		}
		if r.ChargedPct <= base.ChargedPct {
			t.Errorf("alpha=%v charged %.1f%% <= baseline %.1f%%", alpha, r.ChargedPct, base.ChargedPct)
		}
		if r.IncentivesPaid <= 0 {
			t.Errorf("alpha=%v paid no incentives", alpha)
		}
	}
	// Incentives paid scale with alpha; alpha=0.4 minimises total cost.
	if !(rows[0.4].IncentivesPaid < rows[0.7].IncentivesPaid &&
		rows[0.7].IncentivesPaid < rows[1].IncentivesPaid) {
		t.Errorf("incentive outlay not increasing in alpha: %v %v %v",
			rows[0.4].IncentivesPaid, rows[0.7].IncentivesPaid, rows[1].IncentivesPaid)
	}
	if res.BestAlpha != 0.4 {
		t.Errorf("best alpha %v, paper: 0.4", res.BestAlpha)
	}
	if res.SavingPct < 20 {
		t.Errorf("saving %.0f%%, want >= 20%% (paper: 47%%)", res.SavingPct)
	}
	// Fig. 11: fewer service sites and a shorter tour after incentives.
	if res.Fig11.SitesAfter >= res.Fig11.SitesBefore {
		t.Errorf("sites %d -> %d; aggregation failed", res.Fig11.SitesBefore, res.Fig11.SitesAfter)
	}
	if res.Fig11.TourAfterKm >= res.Fig11.TourBeforeKm {
		t.Errorf("tour %.1f -> %.1f km; should shrink", res.Fig11.TourBeforeKm, res.Fig11.TourAfterKm)
	}
	// Fig. 12: total cost rises with q for every alpha.
	byAlpha := map[float64][]Fig12Point{}
	for _, p := range res.Fig12 {
		byAlpha[p.Alpha] = append(byAlpha[p.Alpha], p)
	}
	for alpha, pts := range byAlpha {
		// Higher q also raises the offer value v = α(q+td)/|L_i|, which
		// can locally offset the extra service cost; require the overall
		// trend to rise and any local dip to stay small.
		if pts[len(pts)-1].TotalCost <= pts[0].TotalCost {
			t.Errorf("alpha=%v: total cost does not rise across the q sweep", alpha)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].TotalCost < 0.9*pts[i-1].TotalCost {
				t.Errorf("alpha=%v: total cost drops >10%% as q rises (%v -> %v)",
					alpha, pts[i-1].TotalCost, pts[i].TotalCost)
			}
		}
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestTable6Validation(t *testing.T) {
	cfg := DefaultTable6Config()
	cfg.GridSide = 1
	if _, err := RunTable6(cfg); err == nil {
		t.Error("grid side 1 should error")
	}
	cfg = DefaultTable6Config()
	cfg.Alphas = []float64{0.4} // missing the alpha=0 baseline
	if _, err := RunTable6(cfg); err == nil {
		t.Error("missing alpha=0 should error")
	}
}

func TestTable4PerHourProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("per-hour table4 runs many KS tests")
	}
	res, err := RunTable4(PaperProtocolTable4Config())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's per-hour protocol must preserve the block structure.
	if res.WeekdayWeekday <= res.Cross {
		t.Errorf("per-hour weekday block %.1f%% <= cross %.1f%%", res.WeekdayWeekday, res.Cross)
	}
	if res.WeekendWeekend <= res.Cross {
		t.Errorf("per-hour weekend block %.1f%% <= cross %.1f%%", res.WeekendWeekend, res.Cross)
	}
}
