// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V). Each RunX function is deterministic for a given
// configuration, returns a structured result, and renders the same
// rows/series the paper reports. The cmd/esharing-bench binary and the
// repository's benchmarks drive these runners.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/stats"
)

// fprintf discards the error: experiment rendering writes to in-memory or
// terminal writers where failures are not actionable.
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// rule renders a horizontal separator of the given width.
func rule(w io.Writer, width int) {
	fprintf(w, "%s\n", strings.Repeat("-", width))
}

// cityWorkload is the shared synthetic Mobike-like workload: 14 days of
// trips in a 3×3 km field with POI structure (the dataset substitution
// described in DESIGN.md).
func cityWorkload(seed uint64, weekday, weekend int) ([]dataset.Trip, error) {
	return dataset.Generate(dataset.Config{
		Days:         14,
		TripsWeekday: weekday,
		TripsWeekend: weekend,
		Seed:         seed,
	})
}

// workloadStart is the first day of the generated window (matches
// dataset.Config defaults: 2017-05-10, a Wednesday).
var workloadStart = time.Date(2017, time.May, 10, 0, 0, 0, 0, time.UTC)

// solveOfflineOn aggregates destination points onto a grid and solves the
// offline PLP, returning the landmark stations and the Eq. 1 cost.
func solveOfflineOn(dests []geo.Point, cellMeters, openingCost float64) ([]geo.Point, core.Cost, error) {
	demands, err := gridDemands(dests, cellMeters)
	if err != nil {
		return nil, core.Cost{}, err
	}
	opening := make([]float64, len(demands))
	for i := range opening {
		opening[i] = openingCost
	}
	problem, err := core.NewProblem(demands, opening)
	if err != nil {
		return nil, core.Cost{}, err
	}
	sol, err := core.SolveOffline(problem)
	if err != nil {
		return nil, core.Cost{}, err
	}
	cost, err := problem.Evaluate(sol)
	if err != nil {
		return nil, core.Cost{}, err
	}
	return problem.Stations(sol), cost, nil
}

// gridDemands bins points into cells of the given size; one demand per
// non-empty cell.
func gridDemands(pts []geo.Point, cellMeters float64) ([]core.Demand, error) {
	box := geo.Bound(pts)
	if box.Width() <= 0 || box.Height() <= 0 {
		box = geo.NewBBox(
			geo.Pt(box.MinX-cellMeters, box.MinY-cellMeters),
			geo.Pt(box.MaxX+cellMeters, box.MaxY+cellMeters),
		)
	}
	grid, err := geo.NewGrid(box, cellMeters)
	if err != nil {
		return nil, err
	}
	counts := grid.Histogram(pts)
	var demands []core.Demand
	for idx, n := range counts {
		if n == 0 {
			continue
		}
		cell, err := grid.CellAt(idx)
		if err != nil {
			return nil, err
		}
		demands = append(demands, core.Demand{Loc: grid.Centroid(cell), Arrivals: float64(n)})
	}
	return demands, nil
}

// evaluateOnDemands measures the Eq. 1 cost of a fixed station set
// serving grid demands: each demand walks to its nearest station, each
// station costs openingCost.
func evaluateOnDemands(stations []geo.Point, demands []core.Demand, openingCost float64) core.Cost {
	var cost core.Cost
	cost.Opening = float64(len(stations)) * openingCost
	for _, d := range demands {
		_, dist := geo.Nearest(d.Loc, stations)
		cost.Walking += d.Arrivals * dist
	}
	return cost
}

// sampleField draws n points from dist with a fresh seeded RNG.
func sampleField(seed uint64, dist stats.PointDist, n int) []geo.Point {
	return stats.SamplePoints(stats.NewRNG(seed), dist, n)
}
