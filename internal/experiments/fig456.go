package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stats"
)

// Fig4Config parameterises the offline-vs-Meyerson example (Fig. 4):
// a stream of uniform arrivals in a square field.
type Fig4Config struct {
	Requests    int
	FieldSide   float64
	OpeningCost float64
	Seed        uint64
}

// DefaultFig4Config mirrors the paper: 100 arrivals in 1000×1000 m²;
// opening cost 5000 m reproduces the reported space cost of 25000 for 5
// stations.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{Requests: 100, FieldSide: 1000, OpeningCost: 5000, Seed: 4}
}

// AlgoCost is one algorithm's Fig. 4/6 outcome.
type AlgoCost struct {
	Name     string  `json:"name"`
	Stations int     `json:"stations"`
	Walking  float64 `json:"walking"`
	Opening  float64 `json:"opening"`
}

// Total returns walking + opening.
func (a AlgoCost) Total() float64 { return a.Walking + a.Opening }

// Fig4Result compares the offline 1.61-factor solution against Meyerson's
// online algorithm on the same stream.
type Fig4Result struct {
	Offline  AlgoCost `json:"offline"`
	Meyerson AlgoCost `json:"meyerson"`
	// IncreasePct is Meyerson's total-cost increase over offline
	// (paper: 56%).
	IncreasePct float64 `json:"increasePct"`
}

// RunFig4 regenerates Fig. 4.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Requests < 1 || cfg.FieldSide <= 0 || cfg.OpeningCost <= 0 {
		return nil, fmt.Errorf("experiments: invalid fig4 config %+v", cfg)
	}
	field := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), cfg.FieldSide)}
	streamPts := sampleField(cfg.Seed, field, cfg.Requests)

	// Offline: solve on the full stream (future known).
	problem, err := core.UniformProblem(streamPts, cfg.OpeningCost)
	if err != nil {
		return nil, err
	}
	sol, err := core.SolveOffline(problem)
	if err != nil {
		return nil, err
	}
	offCost, err := problem.Evaluate(sol)
	if err != nil {
		return nil, err
	}

	// Online: Meyerson over the same stream.
	mey, err := core.NewMeyerson(cfg.OpeningCost, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	meyCost, _, err := core.RunStream(mey, streamPts, cfg.OpeningCost)
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{
		Offline: AlgoCost{
			Name: "offline-1.61", Stations: len(sol.Open),
			Walking: offCost.Walking, Opening: offCost.Opening,
		},
		Meyerson: AlgoCost{
			Name: "meyerson", Stations: len(mey.Stations()),
			Walking: meyCost.Walking, Opening: meyCost.Opening,
		},
	}
	res.IncreasePct = 100 * (res.Meyerson.Total() - res.Offline.Total()) / res.Offline.Total()
	return res, nil
}

// Render writes the Fig. 4 comparison.
func (r *Fig4Result) Render(w io.Writer) {
	fprintf(w, "Fig. 4 — offline vs Meyerson online (uniform arrivals)\n")
	rule(w, 64)
	fprintf(w, "%-14s %9s %12s %12s %12s\n", "algorithm", "#parking", "walking", "space", "total")
	for _, a := range []AlgoCost{r.Offline, r.Meyerson} {
		fprintf(w, "%-14s %9d %12.0f %12.0f %12.0f\n", a.Name, a.Stations, a.Walking, a.Opening, a.Total())
	}
	fprintf(w, "online cost increase vs offline: %.0f%% (paper: 56%%)\n", r.IncreasePct)
}

// Fig5Config parameterises the penalty-curve figure.
type Fig5Config struct {
	Tolerance float64
	MaxCost   float64
	Steps     int
}

// DefaultFig5Config uses the paper's L = 200 m.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{Tolerance: 200, MaxCost: 800, Steps: 17}
}

// Fig5Point is one sample of every penalty curve at walking cost C.
type Fig5Point struct {
	C        float64 `json:"c"`
	TypeI    float64 `json:"typeI"`
	TypeII   float64 `json:"typeII"`
	TypeIII  float64 `json:"typeIII"`
	DTypeI   float64 `json:"dTypeI"`
	DTypeII  float64 `json:"dTypeII"`
	DTypeIII float64 `json:"dTypeIII"`
}

// Fig5Result holds the sampled curves of Fig. 5(a) (values) and 5(b)
// (first derivatives).
type Fig5Result struct {
	Tolerance float64     `json:"tolerance"`
	Points    []Fig5Point `json:"points"`
}

// RunFig5 regenerates Fig. 5.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Tolerance <= 0 || cfg.MaxCost <= 0 || cfg.Steps < 2 {
		return nil, fmt.Errorf("experiments: invalid fig5 config %+v", cfg)
	}
	pI, err := core.NewPenalty(core.PenaltyTypeI, cfg.Tolerance)
	if err != nil {
		return nil, err
	}
	pII, err := core.NewPenalty(core.PenaltyTypeII, cfg.Tolerance)
	if err != nil {
		return nil, err
	}
	pIII, err := core.NewPenalty(core.PenaltyTypeIII, cfg.Tolerance)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Tolerance: cfg.Tolerance}
	for s := 0; s < cfg.Steps; s++ {
		c := cfg.MaxCost * float64(s) / float64(cfg.Steps-1)
		res.Points = append(res.Points, Fig5Point{
			C:        c,
			TypeI:    pI.Eval(c),
			TypeII:   pII.Eval(c),
			TypeIII:  pIII.Eval(c),
			DTypeI:   pI.Derivative(c),
			DTypeII:  pII.Derivative(c),
			DTypeIII: pIII.Derivative(c),
		})
	}
	return res, nil
}

// Render writes the Fig. 5 curves as a table.
func (r *Fig5Result) Render(w io.Writer) {
	fprintf(w, "Fig. 5 — penalty functions g(c) and derivatives (L = %.0f m)\n", r.Tolerance)
	rule(w, 76)
	fprintf(w, "%8s %8s %8s %8s | %10s %10s %10s\n",
		"c", "typeI", "typeII", "typeIII", "dI/dc", "dII/dc", "dIII/dc")
	for _, p := range r.Points {
		fprintf(w, "%8.0f %8.3f %8.3f %8.3f | %10.5f %10.5f %10.5f\n",
			p.C, p.TypeI, p.TypeII, p.TypeIII, p.DTypeI, p.DTypeII, p.DTypeIII)
	}
}

// Fig6Config parameterises the proposed-algorithm example.
type Fig6Config struct {
	Fig4 Fig4Config
	// SurgeRequests are extra arrivals drawn from an unknown cluster for
	// the Fig. 6(b) panel.
	SurgeRequests int
}

// DefaultFig6Config mirrors Fig. 6.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{Fig4: DefaultFig4Config(), SurgeRequests: 80}
}

// Fig6Result compares E-sharing against Meyerson on the Fig. 4 stream and
// reports its reaction to an unknown-distribution surge.
type Fig6Result struct {
	ESharing     AlgoCost `json:"eSharing"`
	Meyerson     AlgoCost `json:"meyerson"`
	Offline      AlgoCost `json:"offline"`
	ReductionPct float64  `json:"reductionPct"`
	// SurgeNewStations counts stations opened while serving the
	// out-of-distribution surge (Fig. 6(b): 3 more stations).
	SurgeNewStations int `json:"surgeNewStations"`
}

// RunFig6 regenerates Fig. 6: the deviation-penalty algorithm on the same
// stream as Fig. 4 (panel a) and its response to arrivals from an unknown
// distribution (panel b).
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	fig4, err := RunFig4(cfg.Fig4)
	if err != nil {
		return nil, err
	}
	field := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), cfg.Fig4.FieldSide)}
	streamPts := sampleField(cfg.Fig4.Seed, field, cfg.Fig4.Requests)

	// The offline solution on the historical half guides the online run
	// over the full stream.
	half := streamPts[:len(streamPts)/2]
	landmarks, _, err := solveOfflineOn(half, 100, cfg.Fig4.OpeningCost)
	if err != nil {
		return nil, err
	}
	esCfg := core.DefaultESharingConfig()
	esCfg.Seed = cfg.Fig4.Seed + 2
	esCfg.TestEvery = 20
	esCfg.WindowSize = 30
	es, err := core.NewESharing(landmarks, cfg.Fig4.OpeningCost, half, esCfg)
	if err != nil {
		return nil, err
	}
	esCost, _, err := core.RunStream(es, streamPts, cfg.Fig4.OpeningCost)
	if err != nil {
		return nil, err
	}
	// Landmark stations count toward space occupation (Fig. 6 counts all
	// 7 = 5 offline + 2 online).
	esCost.Opening += float64(len(landmarks)) * cfg.Fig4.OpeningCost

	res := &Fig6Result{
		Offline:  fig4.Offline,
		Meyerson: fig4.Meyerson,
		ESharing: AlgoCost{
			Name: "e-sharing", Stations: len(es.Stations()),
			Walking: esCost.Walking, Opening: esCost.Opening,
		},
	}
	res.ReductionPct = 100 * (res.Meyerson.Total() - res.ESharing.Total()) / res.Meyerson.Total()

	// Panel (b): arrivals from an unknown cluster outside the field.
	surge := stats.NormalDist{
		Center: geo.Pt(cfg.Fig4.FieldSide*1.4, cfg.Fig4.FieldSide*1.4),
		StdDev: cfg.Fig4.FieldSide * 0.12,
	}
	before := len(es.Stations())
	for _, p := range sampleField(cfg.Fig4.Seed+3, surge, cfg.SurgeRequests) {
		if _, err := es.Place(p); err != nil {
			return nil, err
		}
	}
	res.SurgeNewStations = len(es.Stations()) - before
	return res, nil
}

// Render writes the Fig. 6 comparison.
func (r *Fig6Result) Render(w io.Writer) {
	fprintf(w, "Fig. 6 — online algorithm with deviation penalty\n")
	rule(w, 64)
	fprintf(w, "%-14s %9s %12s %12s %12s\n", "algorithm", "#parking", "walking", "space", "total")
	for _, a := range []AlgoCost{r.Offline, r.ESharing, r.Meyerson} {
		fprintf(w, "%-14s %9d %12.0f %12.0f %12.0f\n", a.Name, a.Stations, a.Walking, a.Opening, a.Total())
	}
	fprintf(w, "E-sharing total-cost reduction vs Meyerson: %.0f%% (paper: 23%%)\n", r.ReductionPct)
	fprintf(w, "stations opened for unknown-distribution surge: %d (paper: 3)\n", r.SurgeNewStations)
}
