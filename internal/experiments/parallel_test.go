package experiments

import (
	"reflect"
	"testing"
)

// expWorkerCounts are the parallelism levels every table differential
// runs at, against the Workers=1 sequential reference.
var expWorkerCounts = []int{2, 4, 7}

// The table sweeps key every random draw on a task index (trial, region,
// grid cell, day pair), so the parallel map-reduces must be bit-identical
// to the sequential run — reflect.DeepEqual on the full result structs,
// floats included.

func TestTable3WorkersBitIdentical(t *testing.T) {
	cfg := QuickTable3Config()
	cfg.Workers = 1
	want, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range expWorkerCounts {
		cfg.Workers = workers
		got, err := RunTable3(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: table3 diverged from sequential run\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestTable4WorkersBitIdentical(t *testing.T) {
	cfg := DefaultTable4Config()
	cfg.TripsWeekday, cfg.TripsWeekend = 700, 500
	cfg.SamplePerDay = 120
	cfg.Workers = 1
	want, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range expWorkerCounts {
		cfg.Workers = workers
		got, err := RunTable4(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: table4 diverged from sequential run\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestTable2WorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 trains LSTM grids")
	}
	cfg := QuickTable2Config()
	cfg.Workers = 1
	want, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range expWorkerCounts {
		cfg.Workers = workers
		got, err := RunTable2(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: table2 diverged from sequential run\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestTable5WorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("table5 sweeps regions and trains an LSTM")
	}
	cfg := QuickTable5Config()
	// Shrink the workload below the quick benchmark size: the differential
	// runs RunTable5 four times, and region count, not volume, is what the
	// parallel fan-out keys on.
	cfg.TripsWeekday, cfg.TripsWeekend = 1200, 900
	cfg.Epochs = 5
	cfg.Workers = 1
	want, err := RunTable5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range expWorkerCounts {
		cfg.Workers = workers
		got, err := RunTable5(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: table5 diverged from sequential run\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}
