package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Table3Config parameterises the penalty-function evaluation on synthetic
// request distributions (Fig. 9 and Table III).
type Table3Config struct {
	// Requests per trial per sector (paper: ~200).
	Requests int
	// Trials to average over (paper: 100).
	Trials int
	// FieldHalf is the half-width of the square field around the origin.
	FieldHalf float64
	// Tolerance is the penalty L (paper: 200 m).
	Tolerance float64
	// OpeningCost is the per-station space cost in metres.
	OpeningCost float64
	Seed        uint64
	// Workers bounds the parallel fan-out of the trial sweep; 0 means
	// parallel.Default(). Results are bit-identical at any value.
	Workers int
}

// DefaultTable3Config mirrors the paper's setting.
func DefaultTable3Config() Table3Config {
	return Table3Config{
		Requests:    200,
		Trials:      100,
		FieldHalf:   1000,
		Tolerance:   200,
		OpeningCost: 5000,
		Seed:        9,
	}
}

// QuickTable3Config shrinks the trial count for benchmarks.
func QuickTable3Config() Table3Config {
	cfg := DefaultTable3Config()
	cfg.Trials = 10
	return cfg
}

// Table3Cell is the averaged cost of one (distribution, penalty) pair, in
// km as the paper reports.
type Table3Cell struct {
	WalkingKm float64 `json:"walkingKm"`
	SpaceKm   float64 `json:"spaceKm"`
	// Stations is the mean online stations opened (the Fig. 9 scatter
	// density).
	Stations float64 `json:"stations"`
}

// TotalKm returns walking + space.
func (c Table3Cell) TotalKm() float64 { return c.WalkingKm + c.SpaceKm }

// Table3Result maps distribution name -> penalty name -> averaged cost.
type Table3Result struct {
	Cells map[string]map[string]Table3Cell `json:"cells"`
	// Winner maps distribution name to the penalty with minimum total
	// cost (paper: uniform→I, poisson→III, normal→II).
	Winner map[string]string `json:"winner"`
}

// penaltyOrder fixes rendering order.
var penaltyOrder = []core.PenaltyType{core.NoPenalty, core.PenaltyTypeI, core.PenaltyTypeII, core.PenaltyTypeIII}

// distOrder fixes rendering order.
var distOrder = []string{"uniform", "poisson", "normal"}

// RunTable3 regenerates Table III (and the summary statistics behind
// Fig. 9): for each request distribution and penalty type, stream the
// requests through Algorithm 2 with a single landmark at the origin (the
// offline-derived parking) and average walking and space costs.
func RunTable3(cfg Table3Config) (*Table3Result, error) {
	if cfg.Requests < 1 || cfg.Trials < 1 || cfg.FieldHalf <= 0 {
		return nil, fmt.Errorf("experiments: invalid table3 config %+v", cfg)
	}
	dists := map[string]stats.PointDist{
		"uniform": stats.UniformDist{Box: geo.NewBBox(
			geo.Pt(-cfg.FieldHalf, -cfg.FieldHalf), geo.Pt(cfg.FieldHalf, cfg.FieldHalf))},
		// The Poisson ring concentrates requests in the mid-range around
		// the landmark — the paper's "fall into the tolerance range of
		// Type III" case: a tight ring at ~1.6L, past the Type II cutoff
		// but inside Type III's tail.
		"poisson": stats.PoissonRadialDist{Center: geo.Pt(0, 0), Lambda: 16, Scale: cfg.Tolerance / 10},
		"normal":  stats.NormalDist{Center: geo.Pt(0, 0), StdDev: cfg.FieldHalf / 6},
	}

	res := &Table3Result{
		Cells:  map[string]map[string]Table3Cell{},
		Winner: map[string]string{},
	}
	for _, distName := range distOrder {
		dist := dists[distName]
		res.Cells[distName] = map[string]Table3Cell{}
		bestName, bestTotal := "", 1e18
		for _, pt := range penaltyOrder {
			cell, err := runPenaltyTrials(cfg, dist, pt)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", distName, pt, err)
			}
			res.Cells[distName][pt.String()] = cell
			// The winner is chosen among the actual penalties; the
			// paper's bold minima exclude the no-penalty column for
			// uniform (where no-penalty trivially minimises walking).
			if pt != core.NoPenalty && cell.TotalKm() < bestTotal {
				bestName, bestTotal = pt.String(), cell.TotalKm()
			}
		}
		res.Winner[distName] = bestName
	}
	return res, nil
}

// runPenaltyTrial runs a single trial: one seeded placer consuming one
// seeded request stream. The trial's entire randomness derives from its
// index (the seed formula below), so trials are independent tasks for
// the parallel sweep.
func runPenaltyTrial(cfg Table3Config, dist stats.PointDist, pt core.PenaltyType, trial int) (Table3Cell, error) {
	seed := cfg.Seed + uint64(trial)*1009 + uint64(pt)*7
	var placer core.OnlinePlacer
	if pt == core.NoPenalty {
		// The no-penalty column is the pure online baseline: fixed-f
		// Meyerson without the offline landmark or the doubling
		// schedule — it "has higher probabilities to establish new
		// parking", minimising walking at maximal space cost.
		mey, err := core.NewMeyerson(cfg.OpeningCost, seed)
		if err != nil {
			return Table3Cell{}, err
		}
		placer = mey
	} else {
		esCfg := core.ESharingConfig{
			Beta:           1,
			Tolerance:      cfg.Tolerance,
			TestEvery:      0, // penalty type is pinned per run
			InitialPenalty: pt,
			Seed:           seed,
		}
		// Single landmark at the origin: "the offline derived parking
		// locating at the origin".
		es, err := core.NewESharing([]geo.Point{geo.Pt(0, 0)}, cfg.OpeningCost, nil, esCfg)
		if err != nil {
			return Table3Cell{}, err
		}
		placer = es
	}
	stream := stats.SamplePoints(stats.NewRNG(seed^0xabcdef), dist, cfg.Requests)
	cost, decisions, err := core.RunStream(placer, stream, cfg.OpeningCost)
	if err != nil {
		return Table3Cell{}, err
	}
	opened := 0
	for _, d := range decisions {
		if d.Opened {
			opened++
		}
	}
	return Table3Cell{
		WalkingKm: cost.Walking / 1000,
		SpaceKm:   cost.Opening / 1000,
		Stations:  float64(opened),
	}, nil
}

func runPenaltyTrials(cfg Table3Config, dist stats.PointDist, pt core.PenaltyType) (Table3Cell, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = parallel.Default()
	}
	type outcome struct {
		cell Table3Cell
		err  error
	}
	outs := parallel.Map(workers, cfg.Trials, func(w, trial int) outcome {
		cell, err := runPenaltyTrial(cfg, dist, pt, trial)
		return outcome{cell: cell, err: err}
	})
	// Fold in trial order: float sums are order-sensitive, so the fixed
	// fold keeps the averages bit-identical to the sequential loop.
	var cell Table3Cell
	for _, o := range outs {
		if o.err != nil {
			return Table3Cell{}, o.err
		}
		cell.WalkingKm += o.cell.WalkingKm
		cell.SpaceKm += o.cell.SpaceKm
		cell.Stations += o.cell.Stations
	}
	n := float64(cfg.Trials)
	cell.WalkingKm /= n
	cell.SpaceKm /= n
	cell.Stations /= n
	return cell, nil
}

// Render writes Table III.
func (r *Table3Result) Render(w io.Writer) {
	fprintf(w, "Table III — cost of penalty functions under request distributions (km)\n")
	rule(w, 78)
	fprintf(w, "%-10s %-14s %10s %12s %10s %10s\n",
		"distr.", "penalty", "walking", "public", "total", "#online")
	for _, distName := range distOrder {
		for _, pt := range penaltyOrder {
			cell := r.Cells[distName][pt.String()]
			marker := " "
			if r.Winner[distName] == pt.String() {
				marker = "*"
			}
			fprintf(w, "%-10s %-14s %10.2f %12.2f %9.2f%s %10.1f\n",
				distName, pt.String(), cell.WalkingKm, cell.SpaceKm,
				cell.TotalKm(), marker, cell.Stations)
		}
	}
	rule(w, 78)
	fprintf(w, "* = minimum total cost among penalties; paper's winners: uniform→type-I, poisson→type-III, normal→type-II\n")
	fprintf(w, "winners here: uniform→%s, poisson→%s, normal→%s\n",
		r.Winner["uniform"], r.Winner["poisson"], r.Winner["normal"])
}
