package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/forecast"
)

// Table2Config parameterises the prediction-engine comparison.
type Table2Config struct {
	// Workload volume.
	TripsWeekday, TripsWeekend int
	Seed                       uint64
	// LSTM grid.
	Layers []int
	Backs  []int
	Hidden int
	Epochs int
	// MA and ARIMA grids.
	Windows []int
	Ps      []int
	Ds      []int
	// Horizon is the multi-step forecast depth ("next 1 to 6 hours").
	Horizon int
	// Workers bounds the parallel fan-out of the model grid; 0 means
	// parallel.Default(). Results are bit-identical at any value.
	Workers int
}

// DefaultTable2Config mirrors the paper's Table II grid at a size that
// trains in tens of seconds.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		TripsWeekday: 2400,
		TripsWeekend: 1700,
		Seed:         12,
		Layers:       []int{1, 2, 3},
		Backs:        []int{24, 12, 6, 3, 1},
		Hidden:       24,
		Epochs:       30,
		Windows:      []int{1, 2, 3, 4, 5},
		Ps:           []int{2, 4, 6, 8, 10},
		Ds:           []int{0, 1, 2},
		Horizon:      6,
	}
}

// QuickTable2Config shrinks the grid for fast benchmarking.
func QuickTable2Config() Table2Config {
	cfg := DefaultTable2Config()
	cfg.Layers = []int{1, 2}
	cfg.Backs = []int{12, 3}
	cfg.Hidden = 12
	cfg.Epochs = 10
	cfg.Windows = []int{1, 3, 5}
	cfg.Ps = []int{2, 6}
	cfg.Ds = []int{0, 1}
	return cfg
}

// Table2Cell is one model's walk-forward RMSE.
type Table2Cell struct {
	Model string  `json:"model"`
	RMSE  float64 `json:"rmse"`
}

// Table2Result holds every grid cell plus the winners.
type Table2Result struct {
	LSTM  map[int]map[int]float64 `json:"lstm"`  // layers -> back -> RMSE
	MA    map[int]float64         `json:"ma"`    // window -> RMSE
	ARIMA map[int]map[int]float64 `json:"arima"` // d -> p -> RMSE

	BestLSTM  Table2Cell `json:"bestLstm"`
	BestMA    Table2Cell `json:"bestMa"`
	BestARIMA Table2Cell `json:"bestArima"`
	// ImprovementPct is the best LSTM's RMSE improvement over the best
	// statistical baseline (paper: ~30%).
	ImprovementPct float64 `json:"improvementPct"`
}

// RunTable2 regenerates Table II: walk-forward RMSE of LSTM vs MA vs
// ARIMA on the hourly demand series.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("experiments: horizon %d < 1", cfg.Horizon)
	}
	trips, err := cityWorkload(cfg.Seed, cfg.TripsWeekday, cfg.TripsWeekend)
	if err != nil {
		return nil, err
	}
	series := dataset.HourlySeries(trips, workloadStart, 14*24)
	train, test, err := forecast.SplitTrainTest(series, 0.75)
	if err != nil {
		return nil, err
	}

	res := &Table2Result{
		LSTM:  map[int]map[int]float64{},
		MA:    map[int]float64{},
		ARIMA: map[int]map[int]float64{},
	}

	// Each grid is a parallel map over independent candidates: every
	// LSTM cell owns its fixed seed (derived from layers and back, never
	// from evaluation order), so fanning the sweep out changes no RNG
	// draws. forecast.GridSearch returns the first strict minimum —
	// identical to the sequential scan's winner.
	var lstmSpecs []forecast.GridSpec
	for _, layers := range cfg.Layers {
		res.LSTM[layers] = map[int]float64{}
		for _, back := range cfg.Backs {
			layers, back := layers, back
			lstmSpecs = append(lstmSpecs, forecast.GridSpec{
				Name: fmt.Sprintf("lstm %d-layer back=%d", layers, back),
				New: func() (forecast.Forecaster, error) {
					return forecast.NewLSTM(forecast.LSTMConfig{
						Hidden: cfg.Hidden, Layers: layers, Lookback: back,
						Epochs: cfg.Epochs, LearningRate: 0.01, ClipNorm: 1,
						Seed: cfg.Seed + uint64(layers*100+back),
					})
				},
			})
		}
	}
	lstmRMSE, lstmBest, err := forecast.GridSearch(cfg.Workers, lstmSpecs, train, test, cfg.Horizon)
	if err != nil {
		return nil, err
	}
	for idx, layers := range cfg.Layers {
		for jdx, back := range cfg.Backs {
			res.LSTM[layers][back] = lstmRMSE[idx*len(cfg.Backs)+jdx]
		}
	}
	res.BestLSTM = Table2Cell{Model: lstmSpecs[lstmBest].Name, RMSE: lstmRMSE[lstmBest]}

	var maSpecs []forecast.GridSpec
	for _, wz := range cfg.Windows {
		wz := wz
		maSpecs = append(maSpecs, forecast.GridSpec{
			Name: fmt.Sprintf("ma wz=%d", wz),
			New: func() (forecast.Forecaster, error) {
				return forecast.NewMovingAverage(wz)
			},
		})
	}
	maRMSE, maBest, err := forecast.GridSearch(cfg.Workers, maSpecs, train, test, cfg.Horizon)
	if err != nil {
		return nil, err
	}
	for idx, wz := range cfg.Windows {
		res.MA[wz] = maRMSE[idx]
	}
	res.BestMA = Table2Cell{Model: maSpecs[maBest].Name, RMSE: maRMSE[maBest]}

	var arimaSpecs []forecast.GridSpec
	for _, d := range cfg.Ds {
		res.ARIMA[d] = map[int]float64{}
		for _, p := range cfg.Ps {
			d, p := d, p
			arimaSpecs = append(arimaSpecs, forecast.GridSpec{
				Name: fmt.Sprintf("arima p=%d d=%d", p, d),
				New: func() (forecast.Forecaster, error) {
					return forecast.NewARIMA(p, d, 0)
				},
			})
		}
	}
	arimaRMSE, arimaBest, err := forecast.GridSearch(cfg.Workers, arimaSpecs, train, test, cfg.Horizon)
	if err != nil {
		return nil, err
	}
	for idx, d := range cfg.Ds {
		for jdx, p := range cfg.Ps {
			res.ARIMA[d][p] = arimaRMSE[idx*len(cfg.Ps)+jdx]
		}
	}
	res.BestARIMA = Table2Cell{Model: arimaSpecs[arimaBest].Name, RMSE: arimaRMSE[arimaBest]}

	bestStat := res.BestMA.RMSE
	if res.BestARIMA.RMSE < bestStat {
		bestStat = res.BestARIMA.RMSE
	}
	res.ImprovementPct = 100 * (bestStat - res.BestLSTM.RMSE) / bestStat
	return res, nil
}

// Render writes the Table II grids. Row and column sets are the sorted
// unions of the grid keys — never the keys of one arbitrary map entry —
// so the layout cannot depend on map iteration order and cannot
// misalign columns if inner maps ever diverge.
func (r *Table2Result) Render(w io.Writer) {
	fprintf(w, "Table II — RMSE of prediction algorithms (walk-forward, multi-hour horizon)\n")
	rule(w, 72)
	fprintf(w, "LSTM (rows: layers, cols: back)\n")
	backs := sortedInnerKeys(r.LSTM)
	sort.Sort(sort.Reverse(sort.IntSlice(backs)))
	fprintf(w, "%8s", "")
	for _, b := range backs {
		fprintf(w, " back=%-5d", b)
	}
	fprintf(w, "\n")
	layers := sortedKeys(r.LSTM)
	for _, l := range layers {
		fprintf(w, "%d-layer ", l)
		for _, b := range backs {
			fprintf(w, " %-10.1f", r.LSTM[l][b])
		}
		fprintf(w, "\n")
	}
	fprintf(w, "MA\n")
	wzs := sortedKeys(r.MA)
	for _, wz := range wzs {
		fprintf(w, "  wz=%d: %.1f\n", wz, r.MA[wz])
	}
	fprintf(w, "ARIMA (rows: d, cols: p)\n")
	ds := sortedKeys(r.ARIMA)
	ps := sortedInnerKeys(r.ARIMA)
	fprintf(w, "%6s", "")
	for _, p := range ps {
		fprintf(w, " p=%-7d", p)
	}
	fprintf(w, "\n")
	for _, d := range ds {
		fprintf(w, "d=%d   ", d)
		for _, p := range ps {
			fprintf(w, " %-9.1f", r.ARIMA[d][p])
		}
		fprintf(w, "\n")
	}
	rule(w, 72)
	fprintf(w, "best LSTM : %-28s RMSE %.1f\n", r.BestLSTM.Model, r.BestLSTM.RMSE)
	fprintf(w, "best MA   : %-28s RMSE %.1f\n", r.BestMA.Model, r.BestMA.RMSE)
	fprintf(w, "best ARIMA: %-28s RMSE %.1f\n", r.BestARIMA.Model, r.BestARIMA.RMSE)
	fprintf(w, "LSTM improvement over best statistical baseline: %.0f%% (paper: ~30%%)\n",
		r.ImprovementPct)
}

// sortedKeys returns a map's keys in ascending order.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedInnerKeys returns the ascending union of a grid's inner-map
// keys, so a column set derived from it covers every row.
func sortedInnerKeys(grid map[int]map[int]float64) []int {
	seen := map[int]bool{}
	var keys []int
	for _, row := range grid {
		for k := range row {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Ints(keys)
	return keys
}

// Fig8Config parameterises the actual-vs-predicted series figure.
type Fig8Config struct {
	Table2 Table2Config
}

// DefaultFig8Config uses the Table II workload with the best LSTM shape.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Table2: DefaultTable2Config()}
}

// Fig8Result carries one weekday and one weekend day of hourly actual and
// predicted request counts.
type Fig8Result struct {
	WeekdayActual    []float64 `json:"weekdayActual"`
	WeekdayPredicted []float64 `json:"weekdayPredicted"`
	WeekendActual    []float64 `json:"weekendActual"`
	WeekendPredicted []float64 `json:"weekendPredicted"`
	WeekdayRMSE      float64   `json:"weekdayRmse"`
	WeekendRMSE      float64   `json:"weekendRmse"`
}

// RunFig8 regenerates Fig. 8: a 2-layer back-12 LSTM's one-step
// predictions across one test weekday and one test weekend day.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	trips, err := cityWorkload(cfg.Table2.Seed, cfg.Table2.TripsWeekday, cfg.Table2.TripsWeekend)
	if err != nil {
		return nil, err
	}
	series := dataset.HourlySeries(trips, workloadStart, 14*24)
	// Train on the first 10 days; the test window (days 11–14, May 20–23)
	// contains both weekend (Sat 20, Sun 21) and weekday (Mon 22, Tue 23)
	// days.
	const trainHours = 10 * 24
	train := series[:trainHours]
	model, err := forecast.NewLSTM(forecast.LSTMConfig{
		Hidden: cfg.Table2.Hidden, Layers: 2, Lookback: 12,
		Epochs: cfg.Table2.Epochs, LearningRate: 0.01, ClipNorm: 1,
		Seed: cfg.Table2.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := model.Fit(train); err != nil {
		return nil, err
	}

	predictDay := func(dayIdx int) (actual, predicted []float64, err error) {
		history := append([]float64(nil), series[:dayIdx*24]...)
		for h := 0; h < 24; h++ {
			preds, err := model.Forecast(history, 1)
			if err != nil {
				return nil, nil, err
			}
			predicted = append(predicted, preds[0])
			actual = append(actual, series[dayIdx*24+h])
			history = append(history, series[dayIdx*24+h])
		}
		return actual, predicted, nil
	}

	// Day indices: generation starts Wed May 10 (day 0); day 10 is
	// Sat May 20 (weekend), day 12 is Mon May 22 (weekday).
	res := &Fig8Result{}
	weekendDay, weekdayDay := 10, 12
	if !isWeekend(weekendDay) || isWeekend(weekdayDay) {
		return nil, fmt.Errorf("experiments: fig8 day classification drifted")
	}
	res.WeekendActual, res.WeekendPredicted, err = predictDay(weekendDay)
	if err != nil {
		return nil, err
	}
	res.WeekdayActual, res.WeekdayPredicted, err = predictDay(weekdayDay)
	if err != nil {
		return nil, err
	}
	res.WeekdayRMSE = rmseOf(res.WeekdayPredicted, res.WeekdayActual)
	res.WeekendRMSE = rmseOf(res.WeekendPredicted, res.WeekendActual)
	return res, nil
}

func isWeekend(dayIdx int) bool {
	wd := workloadStart.AddDate(0, 0, dayIdx).Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

func rmseOf(pred, actual []float64) float64 {
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	if len(pred) == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// Render writes both day panels hour by hour.
func (r *Fig8Result) Render(w io.Writer) {
	fprintf(w, "Fig. 8 — actual vs predicted hourly requests (2-layer LSTM, back=12)\n")
	rule(w, 64)
	panel := func(name string, actual, predicted []float64, rmse float64) {
		fprintf(w, "%s (RMSE %.1f)\n", name, rmse)
		fprintf(w, "%6s %10s %10s\n", "hour", "actual", "predicted")
		for h := range actual {
			fprintf(w, "%6d %10.0f %10.1f\n", h, actual[h], predicted[h])
		}
	}
	panel("weekday", r.WeekdayActual, r.WeekdayPredicted, r.WeekdayRMSE)
	panel("weekend", r.WeekendActual, r.WeekendPredicted, r.WeekendRMSE)
}
