package experiments

import (
	"bytes"
	"io"
	"testing"
)

// The determinism backstop behind the static analyzers: every table run
// twice in-process with the same seed must render byte-identical output.
// Where the analyzers prove the absence of specific nondeterminism
// shapes (map-order escapes, wall-clock reads, global rand), this test
// catches whatever they cannot name — and, run under -race in CI with
// Workers > 1, it doubles as a data-race probe on the fork-join paths.

type renderable interface {
	Render(w io.Writer)
}

// renderTwice runs the experiment twice from identical configs and
// fails on the first byte that differs.
func renderTwice(t *testing.T, name string, run func() (renderable, error)) {
	t.Helper()
	render := func() []byte {
		t.Helper()
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.Bytes()
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Errorf("%s: two same-seed runs rendered different bytes\nfirst:\n%s\nsecond:\n%s", name, first, second)
	}
}

func TestTable3RendersIdenticalTwice(t *testing.T) {
	cfg := QuickTable3Config()
	cfg.Workers = 4
	renderTwice(t, "table3", func() (renderable, error) { return RunTable3(cfg) })
}

func TestTable4RendersIdenticalTwice(t *testing.T) {
	cfg := DefaultTable4Config()
	cfg.TripsWeekday, cfg.TripsWeekend = 700, 500
	cfg.SamplePerDay = 120
	cfg.Workers = 4
	renderTwice(t, "table4", func() (renderable, error) { return RunTable4(cfg) })
}

func TestFig4RendersIdenticalTwice(t *testing.T) {
	cfg := DefaultFig4Config()
	renderTwice(t, "fig4", func() (renderable, error) { return RunFig4(cfg) })
}

func TestTable2RendersIdenticalTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 trains LSTM grids")
	}
	cfg := QuickTable2Config()
	cfg.Workers = 4
	renderTwice(t, "table2", func() (renderable, error) { return RunTable2(cfg) })
}

func TestTable5RendersIdenticalTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("table5 sweeps regions and trains an LSTM")
	}
	cfg := QuickTable5Config()
	cfg.TripsWeekday, cfg.TripsWeekend = 1200, 900
	cfg.Epochs = 5
	cfg.Workers = 4
	renderTwice(t, "table5", func() (renderable, error) { return RunTable5(cfg) })
}
