package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/incentive"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table6Config parameterises the incentive evaluation (Figs. 11–12,
// Table VI).
type Table6Config struct {
	// Stations in a grid layout (paper field: the offline stations; a
	// grid isolates the incentive effect from placement).
	GridSide int
	// SpacingMeters between adjacent stations.
	SpacingMeters float64
	// Bikes in the fleet; LowTailFrac of them start low (Fig. 2(d)).
	Bikes       int
	LowTailFrac float64
	// Alphas are the incentive levels of Table VI.
	Alphas []float64
	// QValues sweeps the service cost for Fig. 12's x-axis.
	QValues []float64
	Seed    uint64
}

// DefaultTable6Config mirrors the evaluation.
func DefaultTable6Config() Table6Config {
	return Table6Config{
		GridSide:      5,
		SpacingMeters: 600,
		Bikes:         400,
		LowTailFrac:   0.2,
		Alphas:        []float64{0, 1, 0.7, 0.4},
		QValues:       []float64{1, 2, 5, 10, 20, 40},
		Seed:          16,
	}
}

// Fig11Result captures the low-energy distributions before and after
// incentivising — the heatmap pair plus tour lengths.
type Fig11Result struct {
	// Before/After map station index to low-bike count.
	Before map[int]int `json:"before"`
	After  map[int]int `json:"after"`
	// Tour lengths in km over stations needing service.
	TourBeforeKm float64 `json:"tourBeforeKm"`
	TourAfterKm  float64 `json:"tourAfterKm"`
	// Sites needing charging.
	SitesBefore int `json:"sitesBefore"`
	SitesAfter  int `json:"sitesAfter"`
}

// Table6Row is one alpha's cost breakdown.
type Table6Row struct {
	Alpha          float64 `json:"alpha"`
	ServiceCost    float64 `json:"serviceCost"`
	DelayCost      float64 `json:"delayCost"`
	EnergyCost     float64 `json:"energyCost"`
	IncentivesPaid float64 `json:"incentivesPaid"`
	ChargedPct     float64 `json:"chargedPct"`
	MovingKm       float64 `json:"movingKm"`
}

// TotalCost sums the components.
func (r Table6Row) TotalCost() float64 {
	return r.ServiceCost + r.DelayCost + r.EnergyCost + r.IncentivesPaid
}

// Fig12Point is one (alpha, q) sample of total cost and charged fraction.
type Fig12Point struct {
	Alpha      float64 `json:"alpha"`
	Q          float64 `json:"q"`
	TotalCost  float64 `json:"totalCost"`
	ChargedPct float64 `json:"chargedPct"`
}

// Table6Result bundles Table VI, Fig. 11 and Fig. 12.
type Table6Result struct {
	Rows  []Table6Row  `json:"rows"`
	Fig11 Fig11Result  `json:"fig11"`
	Fig12 []Fig12Point `json:"fig12"`
	// BestAlpha is the alpha with minimum total cost (paper: 0.4).
	BestAlpha float64 `json:"bestAlpha"`
	// SavingPct is the best alpha's total-cost saving vs alpha=0
	// (paper: 47%).
	SavingPct float64 `json:"savingPct"`
	// DistanceSavingPct is the moving-distance saving (paper: 17.5%).
	DistanceSavingPct float64 `json:"distanceSavingPct"`
}

// RunTable6 regenerates Table VI and Figs. 11–12: identical initial fleet
// states are run through charging rounds at each incentive level, and the
// service cost is swept for Fig. 12.
func RunTable6(cfg Table6Config) (*Table6Result, error) {
	if cfg.GridSide < 2 || cfg.Bikes < 10 || len(cfg.Alphas) == 0 {
		return nil, fmt.Errorf("experiments: invalid table6 config %+v", cfg)
	}
	stations := stationGrid(cfg.GridSide, cfg.SpacingMeters)

	res := &Table6Result{}
	var baseRow *Table6Row
	bestTotal := 0.0
	for _, alpha := range cfg.Alphas {
		fleet, err := buildFleet(stations, cfg)
		if err != nil {
			return nil, err
		}
		simCfg := sim.DefaultChargingConfig(alpha)
		simCfg.Seed = cfg.Seed
		rep, err := sim.RunChargingRound(stations, fleet, simCfg)
		if err != nil {
			return nil, fmt.Errorf("alpha %v: %w", alpha, err)
		}
		row := Table6Row{
			Alpha:          alpha,
			ServiceCost:    rep.ServiceCost,
			DelayCost:      rep.DelayCost,
			EnergyCost:     rep.EnergyCost,
			IncentivesPaid: rep.IncentivesPaid,
			ChargedPct:     rep.ChargedPct,
			MovingKm:       rep.TourLength / 1000,
		}
		res.Rows = append(res.Rows, row)
		if alpha == 0 {
			baseRow = &res.Rows[len(res.Rows)-1]
			// Fig. 11 "before" panel comes from the alpha=0 run.
			res.Fig11.Before = rep.LowBefore
			res.Fig11.TourBeforeKm = rep.TourLength / 1000
			res.Fig11.SitesBefore = rep.StationsNeedingService
		}
		if alpha == 0.7 {
			// Fig. 11 "after" panel: a representative incentivised round.
			res.Fig11.After = rep.LowAfter
			res.Fig11.TourAfterKm = rep.TourLength / 1000
			res.Fig11.SitesAfter = rep.StationsNeedingService
		}
		if res.BestAlpha == 0 && alpha == cfg.Alphas[0] || row.TotalCost() < bestTotal {
			res.BestAlpha = alpha
			bestTotal = row.TotalCost()
		}
	}
	if baseRow == nil {
		return nil, fmt.Errorf("experiments: table6 needs alpha=0 in the sweep")
	}
	res.SavingPct = 100 * (baseRow.TotalCost() - bestTotal) / baseRow.TotalCost()
	if baseRow.MovingKm > 0 {
		bestKm := baseRow.MovingKm
		for _, row := range res.Rows {
			if row.Alpha != 0 && row.MovingKm < bestKm {
				bestKm = row.MovingKm
			}
		}
		res.DistanceSavingPct = 100 * (baseRow.MovingKm - bestKm) / baseRow.MovingKm
	}

	// Fig. 12: sweep q per alpha.
	for _, alpha := range cfg.Alphas {
		for _, q := range cfg.QValues {
			fleet, err := buildFleet(stations, cfg)
			if err != nil {
				return nil, err
			}
			simCfg := sim.DefaultChargingConfig(alpha)
			simCfg.Seed = cfg.Seed
			simCfg.Params = incentive.CostParams{
				ServicePerStop: q,
				DelayUnit:      simCfg.Params.DelayUnit,
				ChargePerBike:  simCfg.Params.ChargePerBike,
			}
			rep, err := sim.RunChargingRound(stations, fleet, simCfg)
			if err != nil {
				return nil, fmt.Errorf("fig12 alpha=%v q=%v: %w", alpha, q, err)
			}
			res.Fig12 = append(res.Fig12, Fig12Point{
				Alpha: alpha, Q: q,
				TotalCost:  rep.TotalCost(),
				ChargedPct: rep.ChargedPct,
			})
		}
	}
	return res, nil
}

func stationGrid(side int, spacing float64) []geo.Point {
	out := make([]geo.Point, 0, side*side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			out = append(out, geo.Pt(float64(c)*spacing, float64(r)*spacing))
		}
	}
	return out
}

// buildFleet recreates the identical initial fleet for every run: bikes
// scattered near stations with a seeded low-energy tail.
func buildFleet(stations []geo.Point, cfg Table6Config) (*energy.Fleet, error) {
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed + 7)
	for i := 1; i <= cfg.Bikes; i++ {
		st := stations[rng.IntN(len(stations))]
		loc := geo.Pt(st.X+rng.Float64()*60-30, st.Y+rng.Float64()*60-30)
		if err := fleet.Add(energy.Bike{ID: int64(i), Loc: loc, Level: 1}); err != nil {
			return nil, err
		}
	}
	if err := fleet.SeedLevels(stats.NewRNG(cfg.Seed+8), cfg.LowTailFrac); err != nil {
		return nil, err
	}
	return fleet, nil
}

// Render writes Table VI, the Fig. 11 heatmaps and the Fig. 12 sweep.
func (r *Table6Result) Render(w io.Writer) {
	fprintf(w, "Table VI — charging cost breakdown per incentive level α ($)\n")
	rule(w, 88)
	fprintf(w, "%-8s %10s %10s %10s %12s %10s %10s %10s\n",
		"alpha", "service", "delay", "energy", "incentives", "total", "%charged", "dist(km)")
	for _, row := range r.Rows {
		fprintf(w, "%-8.1f %10.0f %10.0f %10.0f %12.0f %10.0f %10.1f %10.1f\n",
			row.Alpha, row.ServiceCost, row.DelayCost, row.EnergyCost,
			row.IncentivesPaid, row.TotalCost(), row.ChargedPct, row.MovingKm)
	}
	rule(w, 88)
	fprintf(w, "best alpha: %.1f saving %.0f%% of total cost vs alpha=0 (paper: α=0.4, 47%%)\n",
		r.BestAlpha, r.SavingPct)
	fprintf(w, "moving-distance saving: %.1f%% (paper: 17.5%%)\n", r.DistanceSavingPct)

	fprintf(w, "\nFig. 11 — low-energy distribution before/after incentives\n")
	fprintf(w, "before: %d sites, tour %.1f km; after: %d sites, tour %.1f km\n",
		r.Fig11.SitesBefore, r.Fig11.TourBeforeKm, r.Fig11.SitesAfter, r.Fig11.TourAfterKm)
	renderHeat := func(name string, m map[int]int) {
		fprintf(w, "%s:", name)
		var idx []int
		for i := range m {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			fprintf(w, " s%d=%d", i, m[i])
		}
		fprintf(w, "\n")
	}
	renderHeat("  before", r.Fig11.Before)
	renderHeat("  after ", r.Fig11.After)

	fprintf(w, "\nFig. 12 — total cost and %%charged vs service cost q\n")
	fprintf(w, "%-8s %8s %12s %10s\n", "alpha", "q", "total", "%charged")
	for _, p := range r.Fig12 {
		fprintf(w, "%-8.1f %8.1f %12.0f %10.1f\n", p.Alpha, p.Q, p.TotalCost, p.ChargedPct)
	}
}
