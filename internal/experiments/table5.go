package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Table5Config parameterises the PLP algorithm comparison (Fig. 10 and
// Table V).
type Table5Config struct {
	TripsWeekday, TripsWeekend int
	Seed                       uint64
	// Regions is the number of random sub-fields, each solved as an
	// independent PLP (the Fig. 10 scatter points).
	Regions int
	// RegionSide is the sub-field edge in metres.
	RegionSide float64
	// OpeningCost is the space cost per station in metres (paper mean:
	// 10 km).
	OpeningCost float64
	// CellMeters is the demand aggregation granularity.
	CellMeters float64
	// TrainDays splits the 14-day window into history and live test.
	TrainDays int
	// LSTM size for the predicted variant.
	Hidden, Epochs int
	// Workers bounds the parallel fan-out over regions; 0 means
	// parallel.Default(). Results are bit-identical at any value.
	Workers int
}

// DefaultTable5Config mirrors the evaluation.
func DefaultTable5Config() Table5Config {
	return Table5Config{
		TripsWeekday: 2400,
		TripsWeekend: 1700,
		Seed:         15,
		Regions:      12,
		RegionSide:   1100,
		OpeningCost:  10000,
		CellMeters:   100,
		TrainDays:    10,
		Hidden:       20,
		Epochs:       25,
	}
}

// QuickTable5Config shrinks the study for benchmarks.
func QuickTable5Config() Table5Config {
	cfg := DefaultTable5Config()
	cfg.Regions = 4
	cfg.Hidden = 10
	cfg.Epochs = 8
	return cfg
}

// Fig10Point is one region's outcome for one algorithm.
type Fig10Point struct {
	Region   int     `json:"region"`
	Stations int     `json:"stations"`
	TotalKm  float64 `json:"totalKm"`
}

// Table5Row aggregates one algorithm across regions (sums, in km, as
// Table V reports).
type Table5Row struct {
	Name      string  `json:"name"`
	Stations  float64 `json:"stations"` // mean per region
	WalkingKm float64 `json:"walkingKm"`
	SpaceKm   float64 `json:"spaceKm"`
}

// TotalKm returns walking + space.
func (r Table5Row) TotalKm() float64 { return r.WalkingKm + r.SpaceKm }

// Table5Result holds Table V rows and the Fig. 10 scatter.
type Table5Result struct {
	Offline      Table5Row `json:"offline"`
	Meyerson     Table5Row `json:"meyerson"`
	OnlineKMeans Table5Row `json:"onlineKmeans"`
	ESharingAct  Table5Row `json:"eSharingActual"`
	ESharingPred Table5Row `json:"eSharingPredicted"`

	Scatter map[string][]Fig10Point `json:"scatter"`

	// AvgWalkPerRequestM is E-sharing (actual)'s mean walk per request
	// (paper: ~180 m, a 2-minute walk).
	AvgWalkPerRequestM float64 `json:"avgWalkPerRequestM"`
	// GapActualPct / GapPredPct are E-sharing's total-cost gaps over the
	// offline bound (paper: ~20% and ~25%).
	GapActualPct float64 `json:"gapActualPct"`
	GapPredPct   float64 `json:"gapPredPct"`
}

// RunTable5 regenerates Table V and Fig. 10: for each random sub-region,
// solve the PLP with the near-optimal offline algorithm (future known),
// Meyerson, online k-means, and E-sharing guided by offline solutions on
// actual and LSTM-predicted demand; aggregate costs across regions.
func RunTable5(cfg Table5Config) (*Table5Result, error) {
	if cfg.Regions < 1 || cfg.RegionSide <= 0 || cfg.TrainDays < 2 || cfg.TrainDays > 13 {
		return nil, fmt.Errorf("experiments: invalid table5 config %+v", cfg)
	}
	trips, err := cityWorkload(cfg.Seed, cfg.TripsWeekday, cfg.TripsWeekend)
	if err != nil {
		return nil, err
	}
	trainEnd := workloadStart.AddDate(0, 0, cfg.TrainDays)
	var trainTrips, testTrips []dataset.Trip
	for _, t := range trips {
		if t.StartTime.Before(trainEnd) {
			trainTrips = append(trainTrips, t)
		} else {
			testTrips = append(testTrips, t)
		}
	}

	// Demand scale prediction: an LSTM on the hourly totals forecasts the
	// test window's volume; the spatial shape comes from history. The
	// predicted per-cell demand is share_hist(cell) x predictedTotal.
	predictedScale, err := predictTestScale(trips, cfg)
	if err != nil {
		return nil, err
	}

	// Region boxes come from one sequential RNG: draw them all up front
	// (same draw order as the sequential loop), then fan the regions out.
	// Every other random choice in a region is keyed on the region index
	// (the cfg.Seed+region*13+salt formulas), so regions are independent
	// tasks and no RNG draw depends on execution order.
	rng := stats.NewRNG(cfg.Seed + 99)
	fieldBox := geo.Square(geo.Pt(0, 0), 3000)
	boxes := make([]geo.BBox, cfg.Regions)
	for region := range boxes {
		// Random sub-field fully inside the city box.
		ox := rng.Float64() * (fieldBox.Width() - cfg.RegionSide)
		oy := rng.Float64() * (fieldBox.Height() - cfg.RegionSide)
		boxes[region] = geo.Square(geo.Pt(fieldBox.MinX+ox, fieldBox.MinY+oy), cfg.RegionSide)
	}

	type algoRun struct {
		stations []geo.Point
		cost     core.Cost
	}
	type regionOutcome struct {
		skipped                  bool
		err                      error
		off, mey, okm, act, pred algoRun
		walk                     float64
		requests                 int
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = parallel.Default()
	}
	outs := parallel.Map(workers, cfg.Regions, func(w, region int) regionOutcome {
		box := boxes[region]
		testStream := destsIn(testTrips, box)
		histPts := destsIn(trainTrips, box)
		if len(testStream) < 30 || len(histPts) < 30 {
			return regionOutcome{skipped: true} // degenerate region
		}
		var out regionOutcome
		// Offline bound: solve on the test demand itself.
		offStations, offCost, err := solveOfflineOn(testStream, cfg.CellMeters, cfg.OpeningCost)
		if err != nil {
			return regionOutcome{err: err}
		}
		out.off = algoRun{stations: offStations, cost: offCost}

		// Meyerson.
		mey, err := core.NewMeyerson(cfg.OpeningCost, cfg.Seed+uint64(region)*13+1)
		if err != nil {
			return regionOutcome{err: err}
		}
		meyCost, _, err := core.RunStream(mey, testStream, cfg.OpeningCost)
		if err != nil {
			return regionOutcome{err: err}
		}
		out.mey = algoRun{stations: mey.Stations(), cost: meyCost}

		// Online k-means with the offline k as target.
		okm, err := core.NewOnlineKMeans(maxInt(len(offStations), 1), cfg.Seed+uint64(region)*13+2)
		if err != nil {
			return regionOutcome{err: err}
		}
		okmCost, _, err := core.RunStream(okm, testStream, cfg.OpeningCost)
		if err != nil {
			return regionOutcome{err: err}
		}
		out.okm = algoRun{stations: okm.Stations(), cost: okmCost}

		// E-sharing (actual): guided by the offline solution on the
		// actual test demand.
		actCost, actStations, actWalk, err := runESharing(offStations, histPts, testStream, cfg, region, 3)
		if err != nil {
			return regionOutcome{err: err}
		}
		out.act = algoRun{stations: actStations, cost: actCost}
		out.walk = actWalk
		out.requests = len(testStream)

		// E-sharing (predicted): the guide comes from history reshaped by
		// the predicted volume.
		predDemands := scaleDemands(histDemandsOrNil(histPts, cfg.CellMeters), predictedScale)
		predStations, err := solveOnDemands(predDemands, cfg.OpeningCost)
		if err != nil {
			return regionOutcome{err: err}
		}
		predCost, predAll, _, err := runESharing(predStations, histPts, testStream, cfg, region, 4)
		if err != nil {
			return regionOutcome{err: err}
		}
		out.pred = algoRun{stations: predAll, cost: predCost}
		return out
	})

	res := &Table5Result{Scatter: map[string][]Fig10Point{}}
	var totalRequests int
	var totalESWalk float64
	// Fold in region order so the float accumulations and scatter order
	// match the sequential loop exactly.
	for region, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		if out.skipped {
			continue
		}
		scatter := func(name string, run algoRun) {
			res.Scatter[name] = append(res.Scatter[name], Fig10Point{
				Region: region, Stations: len(run.stations), TotalKm: run.cost.Total() / 1000,
			})
		}
		accumulate(&res.Offline, "offline*", out.off.stations, out.off.cost)
		scatter("offline", out.off)
		accumulate(&res.Meyerson, "meyerson", out.mey.stations, out.mey.cost)
		scatter("meyerson", out.mey)
		accumulate(&res.OnlineKMeans, "online-kmeans", out.okm.stations, out.okm.cost)
		scatter("online-kmeans", out.okm)
		accumulate(&res.ESharingAct, "e-sharing (actual)", out.act.stations, out.act.cost)
		scatter("e-sharing-actual", out.act)
		totalESWalk += out.walk
		totalRequests += out.requests
		accumulate(&res.ESharingPred, "e-sharing (predicted)", out.pred.stations, out.pred.cost)
		scatter("e-sharing-predicted", out.pred)
	}
	if res.Offline.Stations == 0 {
		return nil, fmt.Errorf("experiments: every region degenerate; increase workload")
	}
	regions := float64(len(res.Scatter["offline"]))
	for _, row := range []*Table5Row{&res.Offline, &res.Meyerson, &res.OnlineKMeans, &res.ESharingAct, &res.ESharingPred} {
		row.Stations /= regions
	}
	if totalRequests > 0 {
		res.AvgWalkPerRequestM = totalESWalk / float64(totalRequests)
	}
	res.GapActualPct = 100 * (res.ESharingAct.TotalKm() - res.Offline.TotalKm()) / res.Offline.TotalKm()
	res.GapPredPct = 100 * (res.ESharingPred.TotalKm() - res.Offline.TotalKm()) / res.Offline.TotalKm()
	return res, nil
}

// runESharing streams testStream through Algorithm 2 seeded with
// landmarks; the returned cost includes the landmarks' space cost.
func runESharing(landmarks []geo.Point, histPts, testStream []geo.Point, cfg Table5Config, region, salt int) (core.Cost, []geo.Point, float64, error) {
	esCfg := core.DefaultESharingConfig()
	esCfg.Seed = cfg.Seed + uint64(region)*13 + uint64(salt)
	esCfg.TestEvery = 50
	esCfg.WindowSize = 60
	es, err := core.NewESharing(landmarks, cfg.OpeningCost, histPts, esCfg)
	if err != nil {
		return core.Cost{}, nil, 0, err
	}
	cost, _, err := core.RunStream(es, testStream, cfg.OpeningCost)
	if err != nil {
		return core.Cost{}, nil, 0, err
	}
	walk := cost.Walking
	cost.Opening += float64(len(landmarks)) * cfg.OpeningCost
	return cost, es.Stations(), walk, nil
}

func accumulate(row *Table5Row, name string, stations []geo.Point, cost core.Cost) {
	row.Name = name
	row.Stations += float64(len(stations))
	row.WalkingKm += cost.Walking / 1000
	row.SpaceKm += cost.Opening / 1000
}

func destsIn(trips []dataset.Trip, box geo.BBox) []geo.Point {
	var out []geo.Point
	for _, t := range trips {
		if box.Contains(t.End) {
			out = append(out, t.End)
		}
	}
	return out
}

func histDemandsOrNil(pts []geo.Point, cell float64) []core.Demand {
	demands, err := gridDemands(pts, cell)
	if err != nil {
		return nil
	}
	return demands
}

func scaleDemands(demands []core.Demand, scale float64) []core.Demand {
	if scale <= 0 {
		scale = 1
	}
	out := make([]core.Demand, len(demands))
	for i, d := range demands {
		out[i] = core.Demand{Loc: d.Loc, Arrivals: d.Arrivals * scale}
	}
	return out
}

func solveOnDemands(demands []core.Demand, openingCost float64) ([]geo.Point, error) {
	if len(demands) == 0 {
		return nil, fmt.Errorf("experiments: no demand to plan on")
	}
	opening := make([]float64, len(demands))
	for i := range opening {
		opening[i] = openingCost
	}
	problem, err := core.NewProblem(demands, opening)
	if err != nil {
		return nil, err
	}
	sol, err := core.SolveOffline(problem)
	if err != nil {
		return nil, err
	}
	return problem.Stations(sol), nil
}

// predictTestScale trains an LSTM on the training window's hourly totals
// and returns predictedTestVolume / trainVolumePerDay ratio relative to
// the historical per-day volume — the factor that reshapes historical
// per-cell demand into a prediction for the test window.
func predictTestScale(trips []dataset.Trip, cfg Table5Config) (float64, error) {
	series := dataset.HourlySeries(trips, workloadStart, 14*24)
	trainHours := cfg.TrainDays * 24
	train := series[:trainHours]
	testHours := len(series) - trainHours

	model, err := forecast.NewLSTM(forecast.LSTMConfig{
		Hidden: cfg.Hidden, Layers: 2, Lookback: 12,
		Epochs: cfg.Epochs, LearningRate: 0.01, ClipNorm: 1,
		Seed: cfg.Seed,
	})
	if err != nil {
		return 0, err
	}
	if err := model.Fit(train); err != nil {
		return 0, err
	}
	preds, err := model.Forecast(train, testHours)
	if err != nil {
		return 0, err
	}
	var predTotal, histTotal float64
	for _, v := range preds {
		if v > 0 {
			predTotal += v
		}
	}
	for _, v := range train {
		histTotal += v
	}
	if histTotal == 0 {
		return 1, nil
	}
	// Scale converts the full training-window per-cell counts into the
	// predicted test-window volume: predictedDemand(cell) =
	// histCount(cell) x predTotal/histTotal.
	return predTotal / histTotal, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render writes Table V and a Fig. 10 summary.
func (r *Table5Result) Render(w io.Writer) {
	fprintf(w, "Table V — comparison of #parking and cost (km, summed over regions)\n")
	rule(w, 78)
	fprintf(w, "%-22s %10s %12s %12s %12s\n", "algorithm", "#parking", "walking", "space", "total")
	for _, row := range []Table5Row{r.Offline, r.Meyerson, r.OnlineKMeans, r.ESharingAct, r.ESharingPred} {
		fprintf(w, "%-22s %10.1f %12.1f %12.1f %12.1f\n",
			row.Name, row.Stations, row.WalkingKm, row.SpaceKm, row.TotalKm())
	}
	rule(w, 78)
	fprintf(w, "E-sharing gap over offline: actual %.0f%% (paper ~20%%), predicted %.0f%% (paper ~25%%)\n",
		r.GapActualPct, r.GapPredPct)
	fprintf(w, "avg walk per request (E-sharing actual): %.0f m (paper ~180 m)\n", r.AvgWalkPerRequestM)

	fprintf(w, "\nFig. 10 — total cost vs #parking per region\n")
	var names []string
	for name := range r.Scatter {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fprintf(w, "%s:\n", name)
		for _, p := range r.Scatter[name] {
			fprintf(w, "  region %2d: %3d stations, %8.1f km total\n", p.Region, p.Stations, p.TotalKm)
		}
	}
}
