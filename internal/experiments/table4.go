package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Table4Config parameterises the day-to-day similarity matrix.
type Table4Config struct {
	TripsWeekday, TripsWeekend int
	Seed                       uint64
	// SamplePerDay caps the per-day destination sample for the O(n²) KS
	// test (0 means all).
	SamplePerDay int
	// PerHour follows the paper's protocol exactly: compare the same hour
	// interval across days and average the similarity over the 24 hours
	// (hours with fewer than 8 destinations on either side are skipped).
	// When false, whole-day samples are compared — less noisy at small
	// workload volumes.
	PerHour bool
	// MinHourSamples is the per-hour sample floor for PerHour mode
	// (default 8).
	MinHourSamples int
	// Workers bounds the parallel fan-out over day pairs; 0 means
	// parallel.Default(). Results are bit-identical at any value.
	Workers int
}

// DefaultTable4Config mirrors the evaluation volume.
func DefaultTable4Config() Table4Config {
	return Table4Config{TripsWeekday: 1500, TripsWeekend: 1100, Seed: 14, SamplePerDay: 250}
}

// PaperProtocolTable4Config enables the per-hour comparison at a volume
// where hourly samples are meaningful.
func PaperProtocolTable4Config() Table4Config {
	return Table4Config{
		TripsWeekday: 2600, TripsWeekend: 1900, Seed: 14,
		SamplePerDay: 0, PerHour: true, MinHourSamples: 8,
	}
}

// Table4Result holds the 7×7 similarity matrix indexed Mon..Sun (time.
// Weekday order shifted so Monday is row 0) plus block averages.
type Table4Result struct {
	// Matrix[i][j] is the similarity (%) between weekday i and j
	// (0 = Mon ... 6 = Sun); diagonal entries are 100.
	Matrix [7][7]float64 `json:"matrix"`
	// Block averages: within weekdays, within weekends, and across.
	WeekdayWeekday float64 `json:"weekdayWeekday"`
	WeekendWeekend float64 `json:"weekendWeekend"`
	Cross          float64 `json:"cross"`
}

// dayNames in Table IV order.
var dayNames = [7]string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}

// RunTable4 regenerates Table IV: Peacock-KS similarity between the
// destination distributions of each pair of weekdays, averaged over the
// two-week window.
func RunTable4(cfg Table4Config) (*Table4Result, error) {
	trips, err := cityWorkload(cfg.Seed, cfg.TripsWeekday, cfg.TripsWeekend)
	if err != nil {
		return nil, err
	}
	days, byDay := dataset.SplitByDay(trips)
	if cfg.MinHourSamples == 0 {
		cfg.MinHourSamples = 8
	}

	// Collect destination samples per day-of-week (Mon=0..Sun=6),
	// possibly several calendar days each. In PerHour mode each calendar
	// day holds 24 hourly samples instead of one pooled sample.
	samples := map[int][][]geo.Point{}
	hourly := map[int][][24][]geo.Point{}
	for i, day := range days {
		dow := (int(day.Weekday()) + 6) % 7 // Monday -> 0
		if cfg.PerHour {
			var byHour [24][]geo.Point
			for _, tr := range byDay[i] {
				h := tr.StartTime.Hour()
				byHour[h] = append(byHour[h], tr.End)
			}
			hourly[dow] = append(hourly[dow], byHour)
			continue
		}
		pts := dataset.EndPoints(byDay[i])
		if cfg.SamplePerDay > 0 && len(pts) > cfg.SamplePerDay {
			pts = subsample(pts, cfg.SamplePerDay, cfg.Seed+uint64(i))
		}
		samples[dow] = append(samples[dow], pts)
	}

	// The 21 upper-triangle day pairs are independent KS aggregations;
	// map over them in parallel. Within one pair the sample-pair loop
	// keeps its sequential order, so the per-pair similarity sum — a
	// float fold, hence order-sensitive — is unchanged.
	type dayPair struct{ a, b int }
	var pairs []dayPair
	for a := 0; a < 7; a++ {
		for b := a + 1; b < 7; b++ {
			pairs = append(pairs, dayPair{a, b})
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = parallel.Default()
	}
	type pairOutcome struct {
		sim float64
		err error
	}
	pairSim := func(a, b int) (float64, error) {
		var sum float64
		var n int
		if cfg.PerHour {
			for _, ha := range hourly[a] {
				for _, hb := range hourly[b] {
					for h := 0; h < 24; h++ {
						if len(ha[h]) < cfg.MinHourSamples || len(hb[h]) < cfg.MinHourSamples {
							continue
						}
						d, err := stats.Peacock2DFast(ha[h], hb[h])
						if err != nil {
							return 0, fmt.Errorf("ks %s vs %s h%d: %w", dayNames[a], dayNames[b], h, err)
						}
						sum += stats.Similarity(d)
						n++
					}
				}
			}
		} else {
			for _, pa := range samples[a] {
				for _, pb := range samples[b] {
					if len(pa) == 0 || len(pb) == 0 {
						continue
					}
					d, err := stats.Peacock2DFast(pa, pb)
					if err != nil {
						return 0, fmt.Errorf("ks %s vs %s: %w", dayNames[a], dayNames[b], err)
					}
					sum += stats.Similarity(d)
					n++
				}
			}
		}
		if n == 0 {
			return 0, fmt.Errorf("experiments: no samples for %s vs %s", dayNames[a], dayNames[b])
		}
		return sum / float64(n), nil
	}
	outs := parallel.Map(workers, len(pairs), func(w, i int) pairOutcome {
		sim, err := pairSim(pairs[i].a, pairs[i].b)
		return pairOutcome{sim: sim, err: err}
	})

	res := &Table4Result{}
	var wwSum, weSum, crossSum float64
	var wwN, weN, crossN int
	for i, pr := range pairs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		a, b := pr.a, pr.b
		sim := outs[i].sim
		res.Matrix[a][b] = sim
		res.Matrix[b][a] = sim
		weekendA, weekendB := a >= 5, b >= 5
		switch {
		case !weekendA && !weekendB:
			wwSum += sim
			wwN++
		case weekendA && weekendB:
			weSum += sim
			weN++
		default:
			crossSum += sim
			crossN++
		}
	}
	for a := 0; a < 7; a++ {
		res.Matrix[a][a] = 100
	}
	if wwN > 0 {
		res.WeekdayWeekday = wwSum / float64(wwN)
	}
	if weN > 0 {
		res.WeekendWeekend = weSum / float64(weN)
	}
	if crossN > 0 {
		res.Cross = crossSum / float64(crossN)
	}
	return res, nil
}

func subsample(pts []geo.Point, n int, seed uint64) []geo.Point {
	rng := stats.NewRNG(seed)
	idx := rng.Perm(len(pts))[:n]
	out := make([]geo.Point, n)
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

// Render writes the similarity matrix.
func (r *Table4Result) Render(w io.Writer) {
	fprintf(w, "Table IV — similarity (%%) between daily request distributions\n")
	rule(w, 64)
	fprintf(w, "%5s", "")
	for _, n := range dayNames {
		fprintf(w, "%7s", n)
	}
	fprintf(w, "\n")
	for a := 0; a < 7; a++ {
		fprintf(w, "%-5s", dayNames[a])
		for b := 0; b < 7; b++ {
			if a == b {
				fprintf(w, "%7s", "-")
				continue
			}
			fprintf(w, "%7.1f", r.Matrix[a][b])
		}
		fprintf(w, "\n")
	}
	rule(w, 64)
	fprintf(w, "weekday-weekday avg: %.1f%%   weekend-weekend avg: %.1f%%   cross avg: %.1f%%\n",
		r.WeekdayWeekday, r.WeekendWeekend, r.Cross)
	fprintf(w, "(paper: weekday block ≈ 90-97%%, weekend block ≈ 89%%, cross ≈ 58-79%%)\n")
}

// workloadDayOfWeek reports the weekday of the i-th generated day.
func workloadDayOfWeek(dayIdx int) time.Weekday {
	return workloadStart.AddDate(0, 0, dayIdx).Weekday()
}
