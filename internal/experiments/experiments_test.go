package experiments

import (
	"strings"
	"testing"
)

// renderNonEmpty asserts that a result's Render produces output.
func renderNonEmpty(t *testing.T, render func(*strings.Builder)) {
	t.Helper()
	var sb strings.Builder
	render(&sb)
	if sb.Len() == 0 {
		t.Error("Render produced no output")
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := RunFig4(DefaultFig4Config())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: offline opens ~5 stations, Meyerson more; Meyerson's
	// total is substantially (tens of %) above offline.
	if res.Offline.Stations < 3 || res.Offline.Stations > 9 {
		t.Errorf("offline stations=%d, want 3-9 (paper: 5)", res.Offline.Stations)
	}
	if res.Meyerson.Stations <= res.Offline.Stations {
		t.Errorf("meyerson stations %d <= offline %d", res.Meyerson.Stations, res.Offline.Stations)
	}
	if res.IncreasePct < 10 {
		t.Errorf("online increase %.1f%%, want >= 10%% (paper: 56%%)", res.IncreasePct)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestFig4Validation(t *testing.T) {
	if _, err := RunFig4(Fig4Config{}); err == nil {
		t.Error("zero config should error")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := RunFig5(DefaultFig5Config())
	if err != nil {
		t.Fatal(err)
	}
	first := res.Points[0]
	if first.TypeI != 1 || first.TypeII != 1 || first.TypeIII != 1 {
		t.Errorf("g(0) must be 1: %+v", first)
	}
	// Beyond L the ordering II < III < I holds.
	for _, p := range res.Points {
		if p.C > res.Tolerance*1.2 {
			if !(p.TypeII <= p.TypeIII && p.TypeIII <= p.TypeI) {
				t.Errorf("ordering broken at c=%v: II=%v III=%v I=%v", p.C, p.TypeII, p.TypeIII, p.TypeI)
			}
		}
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
	if _, err := RunFig5(Fig5Config{Tolerance: -1}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(DefaultFig6Config())
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: E-sharing lands between offline and Meyerson.
	if res.ESharing.Total() >= res.Meyerson.Total() {
		t.Errorf("e-sharing total %.0f >= meyerson %.0f", res.ESharing.Total(), res.Meyerson.Total())
	}
	if res.ESharing.Total() <= res.Offline.Total() {
		t.Errorf("e-sharing total %.0f <= offline bound %.0f", res.ESharing.Total(), res.Offline.Total())
	}
	if res.ReductionPct <= 0 {
		t.Errorf("reduction %.1f%%, want positive (paper: 23%%)", res.ReductionPct)
	}
	// The unknown-distribution surge must open at least one new station.
	if res.SurgeNewStations < 1 {
		t.Errorf("surge opened %d stations, want >= 1 (paper: 3)", res.SurgeNewStations)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(DefaultFig7Config())
	if err != nil {
		t.Fatal(err)
	}
	// Saving is monotone as m falls, 0 at m=n.
	byN := map[int][]Fig7PointA{}
	for _, p := range res.PanelA {
		byN[p.N] = append(byN[p.N], p)
	}
	for n, pts := range byN {
		if s := pts[n-1].Saving; s != 0 {
			t.Errorf("n=%d: saving at m=n is %v, want 0", n, s)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Saving < pts[i-1].Saving-1e-12 {
				// pts are ordered m=1..n: saving must fall with m.
				continue
			}
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Saving > pts[i-1].Saving+1e-12 {
				t.Errorf("n=%d: saving rises with m at m=%d", n, pts[i].M)
			}
		}
	}
	// Paper's calibration: ~50% at m/n = 0.65 with delay-heavy costs.
	if res.SavingAt65Pct < 0.35 || res.SavingAt65Pct > 0.65 {
		t.Errorf("saving at 0.65 = %v, want ~0.5", res.SavingAt65Pct)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
	if _, err := RunFig7(Fig7Config{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestTable4Shape(t *testing.T) {
	res, err := RunTable4(DefaultTable4Config())
	if err != nil {
		t.Fatal(err)
	}
	// The Table IV block structure: within-group similarity beats
	// cross-group by a clear margin.
	if res.WeekdayWeekday <= res.Cross {
		t.Errorf("weekday block %.1f%% <= cross %.1f%%", res.WeekdayWeekday, res.Cross)
	}
	if res.WeekendWeekend <= res.Cross {
		t.Errorf("weekend block %.1f%% <= cross %.1f%%", res.WeekendWeekend, res.Cross)
	}
	// Symmetry.
	for a := 0; a < 7; a++ {
		for b := 0; b < 7; b++ {
			if res.Matrix[a][b] != res.Matrix[b][a] {
				t.Errorf("matrix asymmetric at (%d,%d)", a, b)
			}
		}
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestTable3Shape(t *testing.T) {
	cfg := QuickTable3Config()
	cfg.Trials = 20
	res, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No-penalty (pure Meyerson) must have the largest space cost, the
	// smallest walking cost, and the worst total per distribution — the
	// paper's framing for why penalties exist.
	for _, dist := range distOrder {
		cells := res.Cells[dist]
		np := cells["none"]
		for _, pen := range []string{"type-I", "type-II", "type-III"} {
			if cells[pen].SpaceKm > np.SpaceKm {
				t.Errorf("%s: %s space %.2f > no-penalty %.2f", dist, pen, cells[pen].SpaceKm, np.SpaceKm)
			}
			if cells[pen].WalkingKm < np.WalkingKm {
				t.Errorf("%s: %s walking %.2f < no-penalty %.2f", dist, pen, cells[pen].WalkingKm, np.WalkingKm)
			}
		}
		// The winning penalty must beat the no-penalty baseline in total
		// cost (a mismatched penalty may lose — that is the point of
		// switching).
		if win := cells[res.Winner[dist]]; win.TotalKm() > np.TotalKm() {
			t.Errorf("%s: winner %s total %.2f > no-penalty %.2f",
				dist, res.Winner[dist], win.TotalKm(), np.TotalKm())
		}
	}
	// Paper winners: normal→II and uniform→I are robust; for the Poisson
	// ring the three penalties land within a fraction of a percent (see
	// EXPERIMENTS.md), so assert type-III is competitive with the winner.
	if res.Winner["normal"] != "type-II" {
		t.Errorf("normal winner %s, paper says type-II", res.Winner["normal"])
	}
	if res.Winner["uniform"] != "type-I" {
		t.Errorf("uniform winner %s, paper says type-I", res.Winner["uniform"])
	}
	poisson := res.Cells["poisson"]
	winTotal := poisson[res.Winner["poisson"]].TotalKm()
	if iii := poisson["type-III"].TotalKm(); iii > winTotal*1.02 {
		t.Errorf("poisson type-III total %.2f not within 2%% of winner %.2f", iii, winTotal)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
	if _, err := RunTable3(Table3Config{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestAblationBeta(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Trials = 2
	res, err := RunAblationBeta(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestAblationPenaltySwitch(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Trials = 2
	res, err := RunAblationPenaltySwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestAblationGuidance(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Trials = 3
	res, err := RunAblationGuidance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	guided, pure := res.Rows[0], res.Rows[1]
	if guided.TotalKm >= pure.TotalKm {
		t.Errorf("guided %.2f km >= pure online %.2f km; guidance should win", guided.TotalKm, pure.TotalKm)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestAblationTSP(t *testing.T) {
	res, err := RunAblationTSP(DefaultAblationConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Per instance size: exact <= 2opt <= nn.
	for i := 0; i+2 < len(res.Rows); i += 3 {
		nn, two, exact := res.Rows[i], res.Rows[i+1], res.Rows[i+2]
		if exact.TotalKm > two.TotalKm+1e-9 || two.TotalKm > nn.TotalKm+1e-9 {
			t.Errorf("ordering broken: nn=%.3f 2opt=%.3f exact=%.3f", nn.TotalKm, two.TotalKm, exact.TotalKm)
		}
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestAblationKS(t *testing.T) {
	res, err := RunAblationKS(DefaultAblationConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fast is a lower bound on brute per size.
	for i := 0; i+1 < len(res.Rows); i += 2 {
		brute, fast := res.Rows[i], res.Rows[i+1]
		if fast.TotalKm > brute.TotalKm+1e-12 {
			t.Errorf("fast %v exceeds brute %v", fast.TotalKm, brute.TotalKm)
		}
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestAblationPolyPenalty(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Trials = 2
	res, err := RunAblationPolyPenalty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// The fitted polynomial must be competitive: within 2x of the best
	// fixed shape on the in-distribution workload.
	best := res.Rows[1].TotalKm
	for _, row := range res.Rows[1:] {
		if row.TotalKm < best {
			best = row.TotalKm
		}
	}
	if res.Rows[0].TotalKm > 2*best {
		t.Errorf("poly penalty %.1f km vs best fixed %.1f km", res.Rows[0].TotalKm, best)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}

func TestAblationLocalSearch(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Trials = 2
	res, err := RunAblationLocalSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	greedy, refined := res.Rows[0], res.Rows[1]
	if refined.TotalKm > greedy.TotalKm+1e-9 {
		t.Errorf("local search worsened: %.3f -> %.3f km", greedy.TotalKm, refined.TotalKm)
	}
	renderNonEmpty(t, func(sb *strings.Builder) { res.Render(sb) })
}
