package experiments

import (
	"fmt"
	"io"

	"repro/internal/incentive"
)

// Fig7Config parameterises the analytic saving-ratio study (Eq. 11).
type Fig7Config struct {
	Params incentive.CostParams
	// N values for panel (a); m sweeps 1..n for each.
	NValues []int
	// Panel (b): fixed n with q and d sweeps for several m.
	PanelBN  int
	PanelBMs []int
	QValues  []float64
	DValues  []float64
}

// DefaultFig7Config mirrors the paper's panels.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Params:   incentive.DefaultCostParams(),
		NValues:  []int{10, 20, 30, 40, 50},
		PanelBN:  30,
		PanelBMs: []int{5, 10, 15, 20},
		QValues:  []float64{1, 2, 5, 10, 20},
		DValues:  []float64{0.5, 1, 2, 5, 10},
	}
}

// Fig7PointA is one (m, n) saving sample.
type Fig7PointA struct {
	M      int     `json:"m"`
	N      int     `json:"n"`
	Saving float64 `json:"saving"`
}

// Fig7PointB is one (q, d, m) saving sample at the fixed panel-B n.
type Fig7PointB struct {
	Q      float64 `json:"q"`
	D      float64 `json:"d"`
	M      int     `json:"m"`
	Saving float64 `json:"saving"`
}

// Fig7Result holds both panels.
type Fig7Result struct {
	PanelA []Fig7PointA `json:"panelA"`
	PanelB []Fig7PointB `json:"panelB"`
	// SavingAt65Pct is the saving at m/n = 0.65 (paper: ~50% with delay-
	// dominated costs).
	SavingAt65Pct float64 `json:"savingAt65Pct"`
}

// RunFig7 regenerates Fig. 7 from Eq. 11.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	if len(cfg.NValues) == 0 || cfg.PanelBN < 1 {
		return nil, fmt.Errorf("experiments: invalid fig7 config %+v", cfg)
	}
	res := &Fig7Result{}
	for _, n := range cfg.NValues {
		for m := 1; m <= n; m++ {
			s, err := incentive.SavingRatio(cfg.Params, m, n)
			if err != nil {
				return nil, err
			}
			res.PanelA = append(res.PanelA, Fig7PointA{M: m, N: n, Saving: s})
		}
	}
	for _, m := range cfg.PanelBMs {
		if m > cfg.PanelBN {
			return nil, fmt.Errorf("experiments: panel-B m=%d exceeds n=%d", m, cfg.PanelBN)
		}
		for _, q := range cfg.QValues {
			for _, d := range cfg.DValues {
				p := cfg.Params
				p.ServicePerStop = q
				p.DelayUnit = d
				s, err := incentive.SavingRatio(p, m, cfg.PanelBN)
				if err != nil {
					return nil, err
				}
				res.PanelB = append(res.PanelB, Fig7PointB{Q: q, D: d, M: m, Saving: s})
			}
		}
	}
	// Paper's calibration point: m/n = 0.65 under delay-dominated costs.
	delayHeavy := cfg.Params
	delayHeavy.DelayUnit = 10 * delayHeavy.ServicePerStop
	n := 40
	m := 26
	s, err := incentive.SavingRatio(delayHeavy, m, n)
	if err != nil {
		return nil, err
	}
	res.SavingAt65Pct = s
	return res, nil
}

// Render writes a condensed view of both panels.
func (r *Fig7Result) Render(w io.Writer) {
	fprintf(w, "Fig. 7 — aggregation saving ratio (Eq. 11)\n")
	rule(w, 60)
	fprintf(w, "panel (a): saving vs m for each n (sampled at m = n, 3n/4, n/2, n/4, 1)\n")
	byN := map[int][]Fig7PointA{}
	var ns []int
	for _, p := range r.PanelA {
		if _, ok := byN[p.N]; !ok {
			ns = append(ns, p.N)
		}
		byN[p.N] = append(byN[p.N], p)
	}
	for _, n := range ns {
		pts := byN[n]
		fprintf(w, "  n=%2d:", n)
		for _, m := range []int{n, 3 * n / 4, n / 2, n / 4, 1} {
			if m < 1 {
				m = 1
			}
			fprintf(w, "  m=%2d→%4.0f%%", m, 100*pts[m-1].Saving)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "saving at m/n = 0.65 with delay-heavy costs: %.0f%% (paper: ~50%%)\n",
		100*r.SavingAt65Pct)
	fprintf(w, "panel (b): saving vs (q, d) per m (n fixed)\n")
	cur := -1
	for _, p := range r.PanelB {
		if p.M != cur {
			cur = p.M
			fprintf(w, "  m=%d:\n", p.M)
		}
		fprintf(w, "    q=%5.1f d=%5.1f → %5.1f%%\n", p.Q, p.D, 100*p.Saving)
	}
}
