package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/routing"
	"repro/internal/stats"
)

// AblationConfig parameterises the design-choice studies listed in
// DESIGN.md §5.
type AblationConfig struct {
	Requests    int
	OpeningCost float64
	Seed        uint64
	Trials      int
}

// DefaultAblationConfig keeps each study under a second.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Requests: 250, OpeningCost: 5000, Seed: 21, Trials: 5}
}

// AblationRow is one variant's averaged outcome.
type AblationRow struct {
	Variant  string  `json:"variant"`
	Stations float64 `json:"stations"`
	TotalKm  float64 `json:"totalKm"`
}

// AblationResult groups rows per study.
type AblationResult struct {
	Study string        `json:"study"`
	Rows  []AblationRow `json:"rows"`
}

// Render writes the rows.
func (r *AblationResult) Render(w io.Writer) {
	fprintf(w, "Ablation — %s\n", r.Study)
	rule(w, 56)
	fprintf(w, "%-26s %10s %12s\n", "variant", "#stations", "total (km)")
	for _, row := range r.Rows {
		fprintf(w, "%-26s %10.1f %12.2f\n", row.Variant, row.Stations, row.TotalKm)
	}
}

// ablationWorkload builds the shared clustered stream with its offline
// guide.
func ablationWorkload(cfg AblationConfig, salt uint64) (landmarks []geo.Point, hist, stream []geo.Point, err error) {
	mix, err := stats.NewMixture("abl-city",
		[]stats.PointDist{
			stats.NormalDist{Center: geo.Pt(300, 300), StdDev: 90},
			stats.NormalDist{Center: geo.Pt(1600, 500), StdDev: 90},
			stats.NormalDist{Center: geo.Pt(900, 1500), StdDev: 90},
			stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)},
		},
		[]float64{3, 3, 3, 1},
	)
	if err != nil {
		return nil, nil, nil, err
	}
	hist = sampleField(cfg.Seed+salt, mix, cfg.Requests)
	stream = sampleField(cfg.Seed+salt+1, mix, cfg.Requests)
	landmarks, _, err = solveOfflineOn(hist, 100, cfg.OpeningCost)
	if err != nil {
		return nil, nil, nil, err
	}
	return landmarks, hist, stream, nil
}

// RunAblationBeta studies the doubling cadence β (DESIGN.md ablation 1).
func RunAblationBeta(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Study: "f-doubling cadence beta"}
	for _, beta := range []float64{1, 2, 4, 8} {
		var stations, total float64
		for trial := 0; trial < cfg.Trials; trial++ {
			landmarks, hist, stream, err := ablationWorkload(cfg, uint64(trial)*31)
			if err != nil {
				return nil, err
			}
			esCfg := core.DefaultESharingConfig()
			esCfg.Beta = beta
			esCfg.Seed = cfg.Seed + uint64(trial)
			esCfg.TestEvery = 50
			es, err := core.NewESharing(landmarks, cfg.OpeningCost, hist, esCfg)
			if err != nil {
				return nil, err
			}
			cost, _, err := core.RunStream(es, stream, cfg.OpeningCost)
			if err != nil {
				return nil, err
			}
			stations += float64(len(es.Stations()))
			total += (cost.Total() + float64(len(landmarks))*cfg.OpeningCost) / 1000
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:  fmt.Sprintf("beta=%.0f", beta),
			Stations: stations / float64(cfg.Trials),
			TotalKm:  total / float64(cfg.Trials),
		})
	}
	return res, nil
}

// RunAblationPenaltySwitch compares KS-driven penalty switching against
// each fixed penalty (DESIGN.md ablation 2). The stream shifts
// distribution halfway to exercise the test.
func RunAblationPenaltySwitch(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Study: "KS-driven penalty switching vs fixed"}
	variants := []struct {
		name      string
		testEvery int
		penalty   core.PenaltyType
	}{
		{"ks-switching", 40, core.PenaltyTypeII},
		{"fixed type-I", 0, core.PenaltyTypeI},
		{"fixed type-II", 0, core.PenaltyTypeII},
		{"fixed type-III", 0, core.PenaltyTypeIII},
	}
	for _, v := range variants {
		var stations, total float64
		for trial := 0; trial < cfg.Trials; trial++ {
			landmarks, hist, stream, err := ablationWorkload(cfg, uint64(trial)*31)
			if err != nil {
				return nil, err
			}
			// Second half shifts to an unseen cluster.
			shift := sampleField(cfg.Seed+uint64(trial)*31+5,
				stats.NormalDist{Center: geo.Pt(2600, 2600), StdDev: 100}, len(stream)/2)
			mixed := append(append([]geo.Point(nil), stream[:len(stream)/2]...), shift...)

			esCfg := core.DefaultESharingConfig()
			esCfg.TestEvery = v.testEvery
			esCfg.InitialPenalty = v.penalty
			esCfg.Seed = cfg.Seed + uint64(trial)
			es, err := core.NewESharing(landmarks, cfg.OpeningCost, hist, esCfg)
			if err != nil {
				return nil, err
			}
			cost, _, err := core.RunStream(es, mixed, cfg.OpeningCost)
			if err != nil {
				return nil, err
			}
			stations += float64(len(es.Stations()))
			total += (cost.Total() + float64(len(landmarks))*cfg.OpeningCost) / 1000
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:  v.name,
			Stations: stations / float64(cfg.Trials),
			TotalKm:  total / float64(cfg.Trials),
		})
	}
	return res, nil
}

// RunAblationGuidance compares offline-guided E-sharing against pure
// Meyerson (DESIGN.md ablation 3).
func RunAblationGuidance(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Study: "offline guidance vs pure online"}
	var guidedStations, guidedTotal, pureStations, pureTotal float64
	for trial := 0; trial < cfg.Trials; trial++ {
		landmarks, hist, stream, err := ablationWorkload(cfg, uint64(trial)*31)
		if err != nil {
			return nil, err
		}
		esCfg := core.DefaultESharingConfig()
		esCfg.Seed = cfg.Seed + uint64(trial)
		esCfg.TestEvery = 50
		es, err := core.NewESharing(landmarks, cfg.OpeningCost, hist, esCfg)
		if err != nil {
			return nil, err
		}
		cost, _, err := core.RunStream(es, stream, cfg.OpeningCost)
		if err != nil {
			return nil, err
		}
		guidedStations += float64(len(es.Stations()))
		guidedTotal += (cost.Total() + float64(len(landmarks))*cfg.OpeningCost) / 1000

		mey, err := core.NewMeyerson(cfg.OpeningCost, cfg.Seed+uint64(trial))
		if err != nil {
			return nil, err
		}
		mCost, _, err := core.RunStream(mey, stream, cfg.OpeningCost)
		if err != nil {
			return nil, err
		}
		pureStations += float64(len(mey.Stations()))
		pureTotal += mCost.Total() / 1000
	}
	n := float64(cfg.Trials)
	res.Rows = append(res.Rows,
		AblationRow{Variant: "guided (e-sharing)", Stations: guidedStations / n, TotalKm: guidedTotal / n},
		AblationRow{Variant: "pure online (meyerson)", Stations: pureStations / n, TotalKm: pureTotal / n},
	)
	return res, nil
}

// RunAblationTSP compares the tour heuristics (DESIGN.md ablation 4).
func RunAblationTSP(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Study: "TSP heuristic quality (tour km; stations column = instance size)"}
	sizes := []int{8, 12, 15}
	for _, n := range sizes {
		pts := sampleField(cfg.Seed+uint64(n), stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 3000)}, n)
		nn, err := routing.NearestNeighbor(pts, 0)
		if err != nil {
			return nil, err
		}
		nnLen, err := routing.TourLength(pts, nn)
		if err != nil {
			return nil, err
		}
		twoOptLen, err := routing.TourLength(pts, routing.TwoOpt(pts, nn))
		if err != nil {
			return nil, err
		}
		_, exact, err := routing.HeldKarp(pts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows,
			AblationRow{Variant: fmt.Sprintf("n=%d nearest-neighbor", n), Stations: float64(n), TotalKm: nnLen / 1000},
			AblationRow{Variant: fmt.Sprintf("n=%d nn+2opt", n), Stations: float64(n), TotalKm: twoOptLen / 1000},
			AblationRow{Variant: fmt.Sprintf("n=%d held-karp (exact)", n), Stations: float64(n), TotalKm: exact / 1000},
		)
	}
	return res, nil
}

// RunAblationPolyPenalty compares the fitted polynomial penalty (the
// paper's future-work extension) against the three fixed shapes on the
// clustered workload; the polynomial is fitted to the historical
// request-to-landmark distances.
func RunAblationPolyPenalty(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Study: "polynomial penalty vs fixed shapes"}
	type variant struct {
		name string
		pen  core.PenaltyType // ignored when poly
		poly bool
	}
	variants := []variant{
		{name: "poly degree-5", poly: true},
		{name: "fixed type-I", pen: core.PenaltyTypeI},
		{name: "fixed type-II", pen: core.PenaltyTypeII},
		{name: "fixed type-III", pen: core.PenaltyTypeIII},
	}
	for _, v := range variants {
		var stations, total float64
		for trial := 0; trial < cfg.Trials; trial++ {
			landmarks, hist, stream, err := ablationWorkload(cfg, uint64(trial)*31)
			if err != nil {
				return nil, err
			}
			esCfg := core.DefaultESharingConfig()
			esCfg.TestEvery = 0
			if !v.poly {
				esCfg.InitialPenalty = v.pen
			}
			esCfg.Seed = cfg.Seed + uint64(trial)
			es, err := core.NewESharing(landmarks, cfg.OpeningCost, hist, esCfg)
			if err != nil {
				return nil, err
			}
			if v.poly {
				dists := make([]float64, len(hist))
				for i, p := range hist {
					_, dists[i] = geo.Nearest(p, landmarks)
				}
				poly, err := core.FitPolyPenalty(dists, 5)
				if err != nil {
					return nil, err
				}
				es.SetCustomPenalty(poly.Eval)
			}
			cost, _, err := core.RunStream(es, stream, cfg.OpeningCost)
			if err != nil {
				return nil, err
			}
			stations += float64(len(es.Stations()))
			total += (cost.Total() + float64(len(landmarks))*cfg.OpeningCost) / 1000
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:  v.name,
			Stations: stations / float64(cfg.Trials),
			TotalKm:  total / float64(cfg.Trials),
		})
	}
	return res, nil
}

// RunAblationKS compares the brute-force and pruned Peacock statistics
// (DESIGN.md ablation 5); the stations column is reused for the sample
// size and TotalKm for the statistic value.
func RunAblationKS(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Study: "Peacock KS: brute force vs sample-origin (column: D statistic)"}
	for _, n := range []int{30, 60, 90} {
		rng := stats.NewRNG(cfg.Seed + uint64(n))
		a := stats.SamplePoints(rng, stats.NormalDist{Center: geo.Pt(0, 0), StdDev: 200}, n)
		b := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(-400, -400), 800)}, n)
		brute, err := stats.Peacock2D(a, b)
		if err != nil {
			return nil, err
		}
		fast, err := stats.Peacock2DFast(a, b)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows,
			AblationRow{Variant: fmt.Sprintf("n=%d brute O(n^3)", n), Stations: float64(n), TotalKm: brute},
			AblationRow{Variant: fmt.Sprintf("n=%d fast O(n^2)", n), Stations: float64(n), TotalKm: fast},
		)
	}
	return res, nil
}

// RunAblationLocalSearch measures what local-search refinement buys on
// top of the 1.61-factor greedy (DESIGN.md pipeline note).
func RunAblationLocalSearch(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Study: "offline greedy vs greedy + local search"}
	var gStations, gTotal, lsStations, lsTotal float64
	for trial := 0; trial < cfg.Trials; trial++ {
		_, hist, _, err := ablationWorkload(cfg, uint64(trial)*31)
		if err != nil {
			return nil, err
		}
		demands, err := gridDemands(hist, 100)
		if err != nil {
			return nil, err
		}
		opening := make([]float64, len(demands))
		for i := range opening {
			opening[i] = cfg.OpeningCost
		}
		problem, err := core.NewProblem(demands, opening)
		if err != nil {
			return nil, err
		}
		sol, err := core.SolveOffline(problem)
		if err != nil {
			return nil, err
		}
		gCost, err := problem.Evaluate(sol)
		if err != nil {
			return nil, err
		}
		improved, _, err := core.ImproveLocalSearch(problem, sol, 20)
		if err != nil {
			return nil, err
		}
		lsCost, err := problem.Evaluate(improved)
		if err != nil {
			return nil, err
		}
		gStations += float64(len(sol.Open))
		gTotal += gCost.Total() / 1000
		lsStations += float64(len(improved.Open))
		lsTotal += lsCost.Total() / 1000
	}
	n := float64(cfg.Trials)
	res.Rows = append(res.Rows,
		AblationRow{Variant: "greedy (1.61-factor)", Stations: gStations / n, TotalKm: gTotal / n},
		AblationRow{Variant: "greedy + local search", Stations: lsStations / n, TotalKm: lsTotal / n},
	)
	return res, nil
}
